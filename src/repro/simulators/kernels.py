"""Tensor kernels: fused permute+GEMM contraction and truncated SVD.

This module plays the role the Julia JIT + swBLAS stack plays in the paper
(Sec. III-E): the hot operations of the MPS simulator - tensor contraction
and SVD - are routed through a small set of kernels with

* a *specialization cache*: contraction plans (permutation + reshape
  metadata) are compiled once per (shape, axes, dtype) signature and reused,
  the same amortize-specialization-over-iterations behaviour Julia's
  multiple dispatch provides on Sunway;
* a *fused permute+GEMM* path: the index permutation is folded into a single
  reshape-transpose feeding one ZGEMM, the technique the paper credits for
  its contraction speedups;
* *reference kernels*: deliberately unoptimized pure-loop implementations
  standing in for the paper's MPE-only baseline in the Fig. 11 experiment.

Backends are process-global and selectable with :func:`set_backend`
("blas" - optimized; "naive" - reference loops).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
from scipy import linalg as sla

from repro.common.errors import ValidationError
from repro.obs import metrics as _obs

#: bump when kernel arithmetic or plan layout changes - part of the
#: calibration-cache fingerprint (repro.tune), so stale timing models are
#: re-probed instead of silently trusted against new kernels
KERNEL_VERSION = 1

#: compiled contraction plans kept per backend; one (shape, axes) signature
#: per gate/measurement shape class, so steady state is far below this -
#: the bound only guards long multi-molecule runs against unbounded growth
PLAN_CACHE_MAX = 512

# observability instruments (free unless `repro.obs` is enabled); these
# merge across process workers like every other labelled counter
_M_PLAN_CACHE = _obs.counter(
    "kernels.plan_cache",
    "contraction-plan cache lookups, labelled hit/miss/evict")
_M_GEMM = _obs.counter(
    "kernels.gemm_calls", "fused permute+GEMM contractions executed")
_M_SVD = _obs.counter(
    "kernels.svd_calls", "truncated SVD kernel invocations")


# ---------------------------------------------------------------------------
# contraction plans (the "JIT specialization" cache)
# ---------------------------------------------------------------------------

@dataclass
class _Plan:
    """Compiled contraction plan for one (shapes, axes) signature."""

    perm_a: tuple[int, ...]
    perm_b: tuple[int, ...]
    rows_a: int
    cols: int
    cols_b: int
    out_shape: tuple[int, ...]


@dataclass
class KernelBackend:
    """Kernel dispatch table plus cache statistics.

    ``plan_cache`` is a bounded LRU (the ``routing_plan`` pattern): hits
    refresh recency, overflow evicts the least-recently-used signature,
    and the hit/miss/eviction traffic is mirrored into the labelled
    ``kernels.plan_cache`` obs counter so it merges across processes and
    shows up in the pinned counter budgets.
    """

    name: str = "blas"
    plan_cache: OrderedDict = field(default_factory=OrderedDict)
    max_plans: int = PLAN_CACHE_MAX
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    gemm_calls: int = 0
    svd_calls: int = 0

    def stats(self) -> dict[str, int]:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "gemm_calls": self.gemm_calls,
            "svd_calls": self.svd_calls,
        }

    def reset_stats(self) -> None:
        self.cache_hits = self.cache_misses = self.cache_evictions = 0
        self.gemm_calls = self.svd_calls = 0


_BACKEND = KernelBackend()


def get_backend() -> KernelBackend:
    """The process-global kernel backend (see :func:`set_backend`)."""
    return _BACKEND


def set_backend(name: str) -> KernelBackend:
    """Select the process-global kernel backend.

    * "blas"  - fused permute+GEMM, gesdd SVD, plan cache (the paper's
      optimized pipeline);
    * "plain" - generic-library choices: unfused einsum contraction and
      gesvd full-matrices SVD (the quimb-like reference of Fig. 8);
    * "naive" - pure-loop reference kernels (the Fig. 11 MPE-only stand-in).
    """
    if name not in ("blas", "plain", "naive"):
        raise ValidationError(f"unknown kernel backend {name!r}")
    _BACKEND.name = name
    return _BACKEND


# ---------------------------------------------------------------------------
# fused permute + GEMM contraction
# ---------------------------------------------------------------------------

def _compile_plan(shape_a: tuple[int, ...], shape_b: tuple[int, ...],
                  axes_a: tuple[int, ...], axes_b: tuple[int, ...]) -> _Plan:
    free_a = [i for i in range(len(shape_a)) if i not in axes_a]
    free_b = [i for i in range(len(shape_b)) if i not in axes_b]
    rows_a = int(np.prod([shape_a[i] for i in free_a], dtype=np.int64)) \
        if free_a else 1
    cols = int(np.prod([shape_a[i] for i in axes_a], dtype=np.int64)) \
        if axes_a else 1
    cols_b = int(np.prod([shape_b[i] for i in free_b], dtype=np.int64)) \
        if free_b else 1
    out_shape = tuple([shape_a[i] for i in free_a]
                      + [shape_b[i] for i in free_b])
    return _Plan(
        perm_a=tuple(free_a + list(axes_a)),
        perm_b=tuple(list(axes_b) + free_b),
        rows_a=rows_a,
        cols=cols,
        cols_b=cols_b,
        out_shape=out_shape,
    )


def tensordot_fused(a: np.ndarray, b: np.ndarray,
                    axes: tuple[tuple[int, ...], tuple[int, ...]],
                    backend: KernelBackend | None = None) -> np.ndarray:
    """Tensor contraction as one permute+reshape feeding a single GEMM.

    Semantically identical to :func:`numpy.tensordot` but with an explicit
    plan cache keyed on the shape/axes signature, so steady-state VQE
    iterations re-use compiled plans (the cache-hit counter exposes this).
    """
    be = backend or _BACKEND
    axes_a = tuple(int(x) for x in axes[0])
    axes_b = tuple(int(x) for x in axes[1])
    key = (a.shape, b.shape, axes_a, axes_b)
    cache = be.plan_cache
    plan = cache.get(key)
    enabled = _obs.REGISTRY.enabled
    if plan is None:
        plan = _compile_plan(a.shape, b.shape, axes_a, axes_b)
        if len(cache) >= be.max_plans:
            cache.popitem(last=False)
            be.cache_evictions += 1
            if enabled:
                _M_PLAN_CACHE.inc(outcome="evict")
        cache[key] = plan
        be.cache_misses += 1
        if enabled:
            _M_PLAN_CACHE.inc(outcome="miss")
    else:
        cache.move_to_end(key)
        be.cache_hits += 1
        if enabled:
            _M_PLAN_CACHE.inc(outcome="hit")

    if be.name == "naive":
        return _tensordot_naive(a, b, axes_a, axes_b, plan)
    if be.name == "plain":
        # generic-library path: per-call contraction without the fused
        # permute+GEMM plan (np.einsum with optimization disabled)
        return _tensordot_plain(a, b, axes_a, axes_b)

    am = a.transpose(plan.perm_a).reshape(plan.rows_a, plan.cols)
    bm = b.transpose(plan.perm_b).reshape(plan.cols, plan.cols_b)
    be.gemm_calls += 1
    if enabled:
        _M_GEMM.inc()
    return (am @ bm).reshape(plan.out_shape)


def _tensordot_plain(a: np.ndarray, b: np.ndarray,
                     axes_a: tuple[int, ...],
                     axes_b: tuple[int, ...]) -> np.ndarray:
    """Unfused contraction: einsum with path optimization disabled."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    sub_a = list(letters[: a.ndim])
    sub_b = list(letters[a.ndim: a.ndim + b.ndim])
    for ia, ib in zip(axes_a, axes_b):
        sub_b[ib] = sub_a[ia]
    out = [c for i, c in enumerate(sub_a) if i not in axes_a] + \
          [c for i, c in enumerate(sub_b) if i not in axes_b]
    spec = f"{''.join(sub_a)},{''.join(sub_b)}->{''.join(out)}"
    return np.einsum(spec, a, b, optimize=False)


def _tensordot_naive(a: np.ndarray, b: np.ndarray,
                     axes_a: tuple[int, ...], axes_b: tuple[int, ...],
                     plan: _Plan) -> np.ndarray:
    """Reference contraction: permute, then triple-loop matrix multiply."""
    am = np.ascontiguousarray(a.transpose(plan.perm_a)).reshape(
        plan.rows_a, plan.cols)
    bm = np.ascontiguousarray(b.transpose(plan.perm_b)).reshape(
        plan.cols, plan.cols_b)
    out = np.zeros((plan.rows_a, plan.cols_b), dtype=np.result_type(a, b))
    for i in range(plan.rows_a):
        row = am[i]
        for j in range(plan.cols_b):
            acc = 0.0 + 0.0j
            col = bm[:, j]
            for k in range(plan.cols):
                acc += row[k] * col[k]
            out[i, j] = acc
    return out.reshape(plan.out_shape)


# ---------------------------------------------------------------------------
# SVD kernels
# ---------------------------------------------------------------------------

def svd_truncated(m: np.ndarray, max_dim: int | None = None,
                  cutoff: float = 0.0,
                  backend: KernelBackend | None = None
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Economy SVD with truncation: returns (U, s, Vh, discarded_weight).

    ``discarded_weight`` is the relative squared Schmidt weight dropped by
    truncating to ``max_dim`` singular values and to values above ``cutoff``;
    this is the truncation-error monitor of the paper (Sec. III-A).
    """
    be = backend or _BACKEND
    be.svd_calls += 1
    if _obs.REGISTRY.enabled:
        _M_SVD.inc()
    if be.name == "naive":
        u, s, vh = _svd_reference(m)
    elif be.name == "plain":
        # generic-library path: the slower QR-based gesvd driver with
        # full matrices computed then sliced
        uf, s, vhf = sla.svd(m, full_matrices=True, lapack_driver="gesvd")
        k = s.size
        u, vh = uf[:, :k], vhf[:k, :]
    else:
        try:
            # numpy's gesdd binding has the lowest call overhead, which
            # matters at the small bond dimensions typical of VQE circuits
            u, s, vh = np.linalg.svd(m, full_matrices=False)
        except np.linalg.LinAlgError:  # pragma: no cover - rare fallback
            u, s, vh = sla.svd(m, full_matrices=False, lapack_driver="gesvd")
    total = float(np.sum(s * s))
    if total == 0.0:
        raise ValidationError("SVD of a zero matrix in MPS update")
    keep = s.size
    if cutoff > 0.0:
        keep = int(np.count_nonzero(s > cutoff * s[0]))
        keep = max(keep, 1)
    if max_dim is not None:
        keep = min(keep, max_dim)
    discarded = float(np.sum(s[keep:] ** 2)) / total
    return u[:, :keep], s[:keep], vh[:keep, :], discarded


def _svd_reference(m: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference SVD: one-sided Jacobi on the Gram matrix, unblocked.

    Deliberately simple and slow (per-column Python loops) - the "MPE-only"
    stand-in for the Fig. 11 kernel comparison.  Falls back to the eigen
    decomposition of M+M, which is numerically adequate for the
    well-conditioned Schmidt spectra that appear in the benchmark circuits.
    """
    rows, cols = m.shape
    if rows >= cols:
        g = np.zeros((cols, cols), dtype=m.dtype)
        for i in range(cols):
            for j in range(cols):
                g[i, j] = np.vdot(m[:, i], m[:, j])
        evals, v = np.linalg.eigh(g)
        order = np.argsort(evals)[::-1]
        evals, v = evals[order], v[:, order]
        s = np.sqrt(np.clip(evals, 0.0, None))
        u = np.zeros((rows, cols), dtype=m.dtype)
        for k in range(cols):
            col = m @ v[:, k]
            nrm = s[k] if s[k] > 1e-300 else 1.0
            u[:, k] = col / nrm
        return u, s, v.conj().T
    u, s, vh = _svd_reference(m.conj().T)
    return vh.conj().T, s, u.conj().T
