"""Quantum-state simulators: state vector, density matrix, and MPS.

The MPS simulator implements the paper's core algorithm (Sec. III-A,
Eqs. 6-11); the other two are the exponential-memory baselines of Fig. 2(c).
All simulators share the circuit IR and agree with one another to machine
precision on every circuit they can all afford, which the test-suite
enforces on random circuits.
"""

from repro.simulators.kernels import (
    KernelBackend,
    get_backend,
    set_backend,
    tensordot_fused,
    svd_truncated,
)
from repro.simulators.pauli_kernels import (
    CompiledObservable,
    PauliAction,
    compile_observable,
)
from repro.simulators.statevector import StatevectorSimulator
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.mps import MPS, TruncationStats
from repro.simulators.mps_circuit import MPSSimulator
from repro.simulators.mpo import MPO
from repro.simulators.dmrg import DMRG, DMRGResult

__all__ = [
    "MPO",
    "DMRG",
    "DMRGResult",
    "CompiledObservable",
    "PauliAction",
    "compile_observable",
    "KernelBackend",
    "get_backend",
    "set_backend",
    "tensordot_fused",
    "svd_truncated",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "MPS",
    "TruncationStats",
    "MPSSimulator",
]
