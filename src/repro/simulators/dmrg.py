"""Two-site DMRG ground-state search on the MPS/MPO machinery.

The paper (Sec. III-A) observes that since the MPS-VQE's expressiveness is
bounded by the underlying MPS, "one may well substitute the VQE simulator by
another MPS based optimization algorithm such as DMRG and a similar or even
higher precision would be expected if the same D is used" - while noting
DMRG parallelizes worse.  This module implements that substitution: a
standard two-site DMRG sweep over the qubit Hamiltonian's MPO, reusing the
kernel layer (fused contractions + truncated SVD) of the MPS simulator.

Gauge bookkeeping: each left-to-right sweep turns sites into left-canonical
A tensors behind the moving two-site window (sites ahead remain the
right-canonical B tensors of the stored MPS), and the state is
re-canonicalized to all-B + Schmidt-value form between sweeps.

Because a qubit Hamiltonian acts on the whole Fock space, the DMRG ground
state lives in whatever particle sector is globally lowest; pass
``n_electrons`` to add a quadratic number-penalty that pins the physical
sector (the same device used in DMRG quantum chemistry codes without
explicit symmetry handling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConvergenceError, ValidationError
from repro.operators.fermion import FermionOperator
from repro.operators.jordan_wigner import jordan_wigner
from repro.operators.pauli import QubitOperator
from repro.simulators.kernels import svd_truncated, tensordot_fused
from repro.simulators.mpo import MPO
from repro.simulators.mps import MPS


@dataclass
class DMRGResult:
    """Converged DMRG state."""

    energy: float
    mps: MPS
    sweep_energies: list[float] = field(default_factory=list)
    n_sweeps: int = 0
    converged: bool = True


def _number_penalty(n_qubits: int, n_electrons: int,
                    strength: float) -> QubitOperator:
    """strength * (N_hat - n_electrons)^2 as a QubitOperator."""
    number = FermionOperator.zero()
    for p in range(n_qubits):
        number = number + FermionOperator.from_term([(p, 1), (p, 0)])
    n_op = jordan_wigner(number)
    shifted = n_op - float(n_electrons)
    return (shifted * shifted) * strength


class DMRG:
    """Two-site DMRG for a qubit Hamiltonian.

    Parameters
    ----------
    hamiltonian:
        Hermitian QubitOperator.
    n_qubits:
        Register width.
    max_bond_dimension:
        MPS bond cap D (the knob shared with the MPS-VQE comparison).
    n_electrons / penalty_strength:
        Optional particle-number pinning (see module docstring).
    """

    def __init__(self, hamiltonian: QubitOperator, n_qubits: int, *,
                 max_bond_dimension: int = 32, cutoff: float = 1e-10,
                 n_electrons: int | None = None,
                 penalty_strength: float = 1.0):
        if not hamiltonian.is_hermitian():
            raise ValidationError("DMRG needs a hermitian Hamiltonian")
        if n_qubits < 2:
            raise ValidationError("DMRG needs at least two sites")
        self.n_qubits = n_qubits
        self.max_bond_dimension = max_bond_dimension
        self.cutoff = cutoff
        self.penalty = 0.0
        op = hamiltonian
        if n_electrons is not None:
            op = (op + _number_penalty(n_qubits, n_electrons,
                                       penalty_strength)).simplify()
        self.mpo = MPO.from_qubit_operator(op, n_qubits)

    # -- environments --------------------------------------------------------

    def _build_right_envs(self, mps: MPS) -> list[np.ndarray]:
        """right[k] = environment of sites >= k, indexed (ket, mpo, bra)."""
        n = self.n_qubits
        right: list[np.ndarray | None] = [None] * (n + 1)
        right[n] = np.ones((1, 1, 1), dtype=complex)
        for k in range(n - 1, -1, -1):
            b = mps.tensors[k]
            w = self.mpo.tensors[k]
            tmp = np.einsum("aib,bnc->ainc", b, right[k + 1], optimize=True)
            tmp = np.einsum("mjin,ainc->amjc", w, tmp, optimize=True)
            right[k] = np.einsum("djc,amjc->amd", np.conj(b), tmp,
                                 optimize=True)
        return right

    def _extend_left(self, left: np.ndarray, mps: MPS, k: int) -> np.ndarray:
        b = mps.tensors[k]
        w = self.mpo.tensors[k]
        tmp = np.einsum("amc,aib->micb", left, b, optimize=True)
        tmp = np.einsum("micb,mjin->jcbn", tmp, w, optimize=True)
        return np.einsum("jcbn,cjd->bnd", tmp, np.conj(b), optimize=True)

    # -- local problem ----------------------------------------------------------

    def _local_ground_state(self, left: np.ndarray, w1: np.ndarray,
                            w2: np.ndarray, right: np.ndarray,
                            dl: int, dr: int) -> tuple[float, np.ndarray]:
        """Lowest eigenpair of the two-site effective Hamiltonian."""
        # H[(c,q,s,e), (a,i,j,b)]: rows are bra indices, columns ket
        h = np.einsum("amc,mqip,psjn,bne->cqseaijb", left, w1, w2, right,
                      optimize=True)
        dim = dl * 2 * 2 * dr
        h = h.reshape(dim, dim)
        evals, evecs = np.linalg.eigh(h)
        return float(evals[0]), evecs[:, 0].reshape(dl, 2, 2, dr)

    # -- driver --------------------------------------------------------------------

    def run(self, *, n_sweeps: int = 20, tolerance: float = 1e-9,
            seed: int | None = None,
            initial_state: MPS | None = None) -> DMRGResult:
        """Sweep until the per-sweep energy change drops below tolerance."""
        n = self.n_qubits
        if initial_state is not None:
            mps = initial_state.copy()
        else:
            mps = MPS.random_state(n, bond_dimension=2, seed=seed)
        mps.max_bond_dimension = self.max_bond_dimension
        mps.cutoff = self.cutoff

        energies: list[float] = []
        e_prev = np.inf
        for sweep in range(1, n_sweeps + 1):
            right = self._build_right_envs(mps)
            left = np.ones((1, 1, 1), dtype=complex)
            e_sweep = np.inf
            for k in range(n - 1):
                b1, b2 = mps.tensors[k], mps.tensors[k + 1]
                dl, dr = b1.shape[0], b2.shape[2]
                w1, w2 = self.mpo.tensors[k], self.mpo.tensors[k + 1]
                e_sweep, theta = self._local_ground_state(
                    left, w1, w2, right[k + 2], dl, dr)
                u, s, vh, disc = svd_truncated(
                    theta.reshape(dl * 2, 2 * dr),
                    mps.max_bond_dimension, mps.cutoff)
                chi = s.size
                mps.stats.record(disc, chi)
                s = s / np.linalg.norm(s)
                # A_k (left-canonical) behind the window; lambda + B ahead
                mps.tensors[k] = u.reshape(dl, 2, chi)
                mps.lambdas[k + 1] = s
                mps.tensors[k + 1] = vh.reshape(chi, 2, dr)
                if k == n - 2:
                    # fold the center weights into the last tensor so the
                    # plain tensor product is the physical state again
                    mps.tensors[k + 1] = (s[:, None, None]
                                          * mps.tensors[k + 1])
                left = self._extend_left(left, mps, k)
            mps._canonicalize()  # back to all right-canonical + Schmidt
            energies.append(float(e_sweep))
            if abs(e_prev - e_sweep) < tolerance:
                return DMRGResult(energy=float(e_sweep), mps=mps,
                                  sweep_energies=energies, n_sweeps=sweep)
            e_prev = e_sweep
        raise ConvergenceError(
            f"DMRG did not converge in {n_sweeps} sweeps",
            iterations=n_sweeps,
            residual=float(abs(energies[-1] - energies[-2]))
            if len(energies) > 1 else None,
        )
