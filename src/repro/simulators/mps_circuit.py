"""Circuit execution on the MPS state (the paper's MPS-VQE simulator core).

Two operating modes reproduce the Fig. 8 software comparison:

* ``optimized`` - the paper's pipeline: single-qubit gates are absorbed into
  two-qubit gates by the fusion pass, contractions run through the fused
  permute+GEMM kernels, and the Hastings update avoids dividing by Schmidt
  values;
* ``naive`` - the quimb-like reference: every gate (including each
  single-qubit rotation) is applied individually, triggering one SVD per
  two-qubit gate with no fusion benefit.

Both modes produce identical states (the test-suite checks against the dense
statevector simulator); only their cost differs.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.circuits.circuit import Circuit
from repro.circuits.fusion import fuse_single_qubit_gates
from repro.operators.pauli import PauliTerm, QubitOperator
from repro.simulators.mps import MPS
from repro.simulators.mps_measure import MEASUREMENT_MODES, MPSMeasurementEngine


class MPSSimulator:
    """Run bound circuits on an MPS with bounded bond dimension.

    Parameters
    ----------
    n_qubits:
        Register width.
    max_bond_dimension:
        Truncation threshold D (None = exact).
    mode:
        "optimized" (gate fusion on) or "naive" (reference pipeline).
    measurement:
        Observable-evaluation strategy: "auto" (cost-model pick between the
        shared-environment sweep and the compressed-MPO contraction),
        "sweep", "mpo", or "per_term" (the independent-contraction oracle).
    cutoff, max_truncation_error:
        Forwarded to :class:`repro.simulators.mps.MPS`.
    """

    #: the state lives in tensor-train form; expectations go through the
    #: transfer-matrix path rather than the dense Pauli kernels
    natively_dense = False

    def __init__(self, n_qubits: int, *, max_bond_dimension: int | None = None,
                 mode: str = "optimized", measurement: str = "auto",
                 cutoff: float = 1e-12,
                 max_truncation_error: float | None = None):
        if mode not in ("optimized", "naive"):
            raise ValidationError(f"unknown MPS simulator mode {mode!r}")
        if measurement not in MEASUREMENT_MODES:
            raise ValidationError(
                f"unknown measurement mode {measurement!r}; "
                f"expected one of {MEASUREMENT_MODES}"
            )
        self.n_qubits = n_qubits
        self.mode = mode
        self.measurement = measurement
        self._engine = MPSMeasurementEngine()
        self._mps_kwargs = dict(
            max_bond_dimension=max_bond_dimension,
            cutoff=cutoff,
            max_truncation_error=max_truncation_error,
        )
        if mode == "naive":
            # generic-library kernels: unfused einsum + gesvd SVD
            from repro.simulators.kernels import KernelBackend

            self._mps_kwargs["backend"] = KernelBackend(name="plain")
        self.state = MPS(n_qubits, **self._mps_kwargs)

    # -- state management ------------------------------------------------------

    def reset(self) -> None:
        self.state = MPS(self.n_qubits, **self._mps_kwargs)

    def set_state(self, mps: MPS) -> None:
        if mps.n_qubits != self.n_qubits:
            raise ValidationError("MPS width mismatch")
        self.state = mps

    def copy(self) -> "MPSSimulator":
        """Independent snapshot (same truncation controls and mode).

        The clone gets a fresh measurement engine: environment caches are
        keyed on state identity + revision, so sharing one across snapshots
        would only ever miss.
        """
        clone = MPSSimulator(self.n_qubits, mode=self.mode,
                             measurement=self.measurement)
        clone._mps_kwargs = dict(self._mps_kwargs)
        clone.state = self.state.copy()
        return clone

    # -- execution ----------------------------------------------------------------

    def run(self, circuit: Circuit) -> "MPSSimulator":
        """Apply a bound circuit to the current state (returns self)."""
        if circuit.n_qubits != self.n_qubits:
            raise ValidationError(
                f"circuit width {circuit.n_qubits} != register {self.n_qubits}"
            )
        if self.mode == "optimized":
            circuit = fuse_single_qubit_gates(circuit)
        for gate in circuit.gates:
            if gate.n_qubits == 1:
                self.state.apply_one_qubit(gate.matrix(), gate.qubits[0])
            else:
                self.state.apply_two_qubit(gate.matrix(), *gate.qubits)
        return self

    # -- measurement ------------------------------------------------------------------

    def expectation_pauli(self, term: PauliTerm) -> float:
        return self.state.expectation_pauli(term)

    def expectation(self, op: QubitOperator) -> float:
        """Batched <H> through the measurement engine.

        The route is picked by the simulator's ``measurement`` mode: shared
        environment sweep, compressed-MPO contraction, cost-model "auto", or
        the per-term oracle.  <P> is real for every Pauli string; complex
        coefficients (e.g. in non-hermitian excitation operators measured
        for RDMs) are combined before the final real part is taken.
        """
        return self._engine.expectation(self.state, op, self.n_qubits,
                                        mode=self.measurement)

    def statevector(self) -> np.ndarray:
        """Dense expansion (small registers; for cross-simulator tests)."""
        return self.state.to_statevector()

    def sample(self, n_samples: int, seed: int | None = None) -> list[str]:
        """Sequential-conditioning samples (delegates to the MPS state)."""
        return self.state.sample(n_samples, seed=seed)

    # -- diagnostics -----------------------------------------------------------------

    @property
    def truncation_stats(self):
        return self.state.stats

    def max_bond(self) -> int:
        return self.state.max_bond()

    def memory_bytes(self) -> int:
        return self.state.memory_bytes()
