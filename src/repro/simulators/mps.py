"""Matrix Product State with right-canonical tensors and bond Schmidt values.

Implements the paper's Sec. III-A verbatim:

* the state is stored as right-canonical site tensors B_n (Eq. 6) plus the
  Schmidt values lambda_b on every bond;
* a nearest-neighbour two-qubit gate contracts into the rank-4 tensor M
  (Eq. 7), is pre-scaled by the *left* bond's Schmidt values (Eq. 8),
  economy-SVD'd (Eq. 9) and truncated to the bond dimension D keeping the
  largest Schmidt values;
* the left tensor is restored with the Hastings trick B = M V+ (Eq. 10),
  which avoids dividing by small Schmidt values and keeps both tensors
  right-canonical;
* local expectation values close with lambda^2 on the left and the
  right-canonical identity on the right (Eq. 11);
* the cumulative discarded Schmidt weight is tracked as the truncation-error
  monitor the paper describes, with an optional hard ceiling that raises
  :class:`repro.common.errors.TruncationOverflowError`.

Bond convention: ``lambdas[b]`` lives on the bond *left of* site ``b``
(``lambdas[0]`` and ``lambdas[n]`` are the trivial edge bonds).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import TruncationOverflowError, ValidationError
from repro.common.rng import default_rng
from repro.obs import metrics as _obs
from repro.simulators.kernels import (
    KernelBackend,
    get_backend,
    svd_truncated,
    tensordot_fused,
)

# observability instruments (no-ops unless `repro.obs` is enabled); counter
# values are deterministic functions of the gate stream, which the
# tests/regression/ budgets pin
_M_GATE_1Q = _obs.counter(
    "mps.gate_1q", "single-qubit gate applications")
_M_GATE_2Q = _obs.counter(
    "mps.gate_2q", "two-qubit gate applications (before routing)")
_M_SWAP = _obs.counter(
    "mps.swap", "adjacent SWAPs inserted by routing plans")
_M_SVD = _obs.counter(
    "mps.svd", "truncated SVDs (Eq. 9 updates and canonicalization sweeps)")
_M_DISCARDED = _obs.counter(
    "mps.discarded_weight",
    "discarded Schmidt weight (Eq. 11 truncation error), labelled per bond",
    unit="weight")
_M_TRUNC_EVENTS = _obs.counter(
    "mps.truncation_events", "truncations with nonzero discarded weight")
_M_MAX_BOND = _obs.gauge(
    "mps.max_bond_dimension", "largest bond dimension reached")
_M_ROUTE_REQUESTS = _obs.counter(
    "mps.routing_plan.requests", "routing-plan lookups (non-trivial pairs)")
_M_ROUTE_MISSES = _obs.counter(
    "mps.routing_plan.misses",
    "routing plans actually derived (cache misses)")
_M_ROUTE_HITS = _obs.counter(
    "mps.routing_plan.hits", "routing plans answered from the cache")
_M_ROUTE_EVICTIONS = _obs.counter(
    "mps.routing_plan.evictions",
    "least-recently-used routing plans dropped at the size bound")

_SWAP = np.array([[1, 0, 0, 0],
                  [0, 0, 1, 0],
                  [0, 1, 0, 0],
                  [0, 0, 0, 1]], dtype=complex)


@dataclass
class TruncationStats:
    """Accumulated truncation diagnostics for one MPS evolution.

    ``per_bond_discarded_weight`` resolves the total by bond index (the
    bond *left of* the site carrying the new Schmidt vector), which is
    the Eq. 11 truncation-error budget the property suite checks against
    exact-state fidelity and ``repro.obs`` exports per bond.
    """

    total_discarded_weight: float = 0.0
    max_discarded_weight: float = 0.0
    truncation_events: int = 0
    max_bond_dimension_reached: int = 1
    per_bond_discarded_weight: dict[int, float] = field(default_factory=dict)

    def record(self, discarded: float, bond_dim: int,
               bond: int | None = None) -> None:
        self.total_discarded_weight += discarded
        self.max_discarded_weight = max(self.max_discarded_weight, discarded)
        if discarded > 0.0:
            self.truncation_events += 1
            if bond is not None:
                self.per_bond_discarded_weight[bond] = \
                    self.per_bond_discarded_weight.get(bond, 0.0) + discarded
        if bond_dim > self.max_bond_dimension_reached:
            self.max_bond_dimension_reached = bond_dim
        if _obs.REGISTRY.enabled:
            if discarded > 0.0:
                _M_TRUNC_EVENTS.inc()
                if bond is not None:
                    _M_DISCARDED.inc(discarded, bond=bond)
            _M_MAX_BOND.set_max(bond_dim)


class MPS:
    """A right-canonical matrix product state over qubits (d=2).

    Parameters
    ----------
    n_qubits:
        Chain length.
    max_bond_dimension:
        Truncation threshold D; ``None`` means unbounded (exact evolution).
    cutoff:
        Relative singular-value cutoff applied before the D cap.
    max_truncation_error:
        Optional hard ceiling on accumulated discarded weight - exceeded
        means the simulation is no longer trustworthy at this D and a
        :class:`TruncationOverflowError` is raised.
    """

    def __init__(self, n_qubits: int, *, max_bond_dimension: int | None = None,
                 cutoff: float = 1e-12,
                 max_truncation_error: float | None = None,
                 backend: KernelBackend | None = None,
                 update_scheme: str = "hastings"):
        if n_qubits < 1:
            raise ValidationError("MPS needs at least one site")
        if max_bond_dimension is not None and max_bond_dimension < 1:
            raise ValidationError("max_bond_dimension must be >= 1")
        if update_scheme not in ("hastings", "vidal"):
            raise ValidationError(
                f"unknown update scheme {update_scheme!r}"
            )
        self.n_qubits = n_qubits
        self.max_bond_dimension = max_bond_dimension
        self.cutoff = cutoff
        self.max_truncation_error = max_truncation_error
        #: "hastings" restores B_q = M V+ (Eq. 10, no division); "vidal"
        #: divides U S by the left Schmidt values - the numerically fragile
        #: alternative the paper's scheme avoids (kept for the ablation
        #: benchmark).
        self.update_scheme = update_scheme
        self.backend = backend or get_backend()
        self.stats = TruncationStats()
        #: monotone state-revision counter, bumped by every mutating
        #: operation; measurement-side environment caches key on it so a
        #: stale environment can never be read against an evolved state
        self.revision = 0
        # |0...0> product state
        self.tensors: list[np.ndarray] = []
        for _ in range(n_qubits):
            t = np.zeros((1, 2, 1), dtype=complex)
            t[0, 0, 0] = 1.0
            self.tensors.append(t)
        self.lambdas: list[np.ndarray] = [
            np.ones(1) for _ in range(n_qubits + 1)
        ]

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_bitstring(cls, bits: str, **kwargs) -> "MPS":
        """Product state |b_0 b_1 ...> with qubit 0 leftmost."""
        mps = cls(len(bits), **kwargs)
        for q, b in enumerate(bits):
            if b not in "01":
                raise ValidationError(f"bad bit {b!r}")
            t = np.zeros((1, 2, 1), dtype=complex)
            t[0, int(b), 0] = 1.0
            mps.tensors[q] = t
        mps.revision += 1
        return mps

    @classmethod
    def random_state(cls, n_qubits: int, bond_dimension: int,
                     seed: int | None = None, **kwargs) -> "MPS":
        """Random MPS with the requested bond dimension, canonicalized.

        This is the Sec. IV-B benchmark initial state ("the initial quantum
        state is generated randomly according to a bond dimension
        threshold").
        """
        rng = default_rng(seed)
        mps = cls(n_qubits, **kwargs)
        dims = [1]
        for b in range(1, n_qubits):
            dims.append(int(min(bond_dimension, 2 ** b,
                                2 ** (n_qubits - b))))
        dims.append(1)
        for q in range(n_qubits):
            shape = (dims[q], 2, dims[q + 1])
            mps.tensors[q] = (rng.standard_normal(shape)
                              + 1j * rng.standard_normal(shape))
        mps._canonicalize()
        mps.stats = TruncationStats()  # construction is not evolution
        return mps

    @classmethod
    def from_attached(cls, n_qubits: int, tensors, lambdas, *,
                      revision: int = 0, **kwargs) -> "MPS":
        """Wrap externally owned tensor buffers as an MPS (no copies).

        The worker-side entry point of the ``mps_shm`` state transport
        (:mod:`repro.parallel.transport`): ``tensors`` and ``lambdas`` are
        typically read-only views into a shared-memory segment the parent
        process owns, and ``revision`` restores the exporter's revision
        counter so measurement-side caches key consistently.  The wrapped
        state is only safe to *measure*; applying gates to read-only
        buffers raises.
        """
        if len(tensors) != n_qubits or len(lambdas) != n_qubits + 1:
            raise ValidationError(
                f"attached buffers do not describe {n_qubits} sites: "
                f"{len(tensors)} tensors, {len(lambdas)} bond vectors"
            )
        mps = cls(n_qubits, **kwargs)
        mps.tensors = list(tensors)
        mps.lambdas = list(lambdas)
        mps.revision = int(revision)
        return mps

    # -- canonical form -------------------------------------------------------

    def _canonicalize(self) -> None:
        """Restore right-canonical form + Schmidt values via two sweeps."""
        n = self.n_qubits
        # left-to-right QR sweep -> left-canonical, accumulates norm
        for q in range(n - 1):
            dl, d, dr = self.tensors[q].shape
            mat = self.tensors[q].reshape(dl * d, dr)
            qm, rm = np.linalg.qr(mat)
            self.tensors[q] = qm.reshape(dl, d, qm.shape[1])
            self.tensors[q + 1] = tensordot_fused(
                rm, self.tensors[q + 1], axes=((1,), (0,)),
                backend=self.backend)
        # right-to-left SVD sweep -> right-canonical + Schmidt values
        for q in range(n - 1, 0, -1):
            dl, d, dr = self.tensors[q].shape
            mat = self.tensors[q].reshape(dl, d * dr)
            u, s, vh, disc = svd_truncated(
                mat, self.max_bond_dimension, self.cutoff,
                backend=self.backend)
            if _obs.REGISTRY.enabled:
                _M_SVD.inc()
            self.stats.record(disc, s.size, bond=q)
            norm = np.linalg.norm(s)
            s = s / norm
            self.lambdas[q] = s
            self.tensors[q] = vh.reshape(s.size, d, dr)
            carry = u * (s * norm)[None, :]
            self.tensors[q - 1] = tensordot_fused(
                self.tensors[q - 1], carry, axes=((2,), (0,)),
                backend=self.backend)
        # overall normalization sits in tensor 0
        nrm = np.linalg.norm(self.tensors[0])
        if nrm == 0.0:
            raise ValidationError("zero-norm MPS")
        self.tensors[0] = self.tensors[0] / nrm
        self.lambdas[0] = np.ones(1)
        self.lambdas[n] = np.ones(1)
        self.revision += 1

    # -- properties --------------------------------------------------------------

    def bond_dimensions(self) -> list[int]:
        return [lam.size for lam in self.lambdas[1:-1]]

    def max_bond(self) -> int:
        dims = self.bond_dimensions()
        return max(dims) if dims else 1

    def memory_bytes(self) -> int:
        return sum(t.nbytes for t in self.tensors) + \
            sum(l.nbytes for l in self.lambdas)

    def entanglement_entropy(self, bond: int) -> float:
        """Von Neumann entropy of the Schmidt spectrum on ``bond``."""
        if bond < 1 or bond > self.n_qubits - 1:
            raise ValidationError(f"bond {bond} out of range")
        lam2 = self.lambdas[bond] ** 2
        lam2 = lam2[lam2 > 1e-16]
        return float(-np.sum(lam2 * np.log(lam2)))

    def norm(self) -> float:
        """State norm (1 up to accumulated truncation loss)."""
        # right-canonical: norm^2 = sum_i |tensor_0|^2 contracted... the
        # full contraction reduces to Frobenius norm of the first tensor
        return float(np.linalg.norm(self.tensors[0]))

    def check_right_canonical(self, tolerance: float = 1e-9) -> bool:
        """Verify the right-canonical invariant on every site."""
        for q in range(self.n_qubits):
            b = self.tensors[q]
            g = tensordot_fused(b, b.conj(), axes=((1, 2), (1, 2)),
                                backend=self.backend)
            if not np.allclose(g, np.eye(b.shape[0]), atol=tolerance):
                return False
        return True

    # -- gate application ---------------------------------------------------------

    def apply_one_qubit(self, mat: np.ndarray, q: int) -> None:
        """Apply a 2x2 unitary on site q (right-canonical preserved)."""
        if q < 0 or q >= self.n_qubits:
            raise ValidationError(f"qubit {q} out of range")
        if _obs.REGISTRY.enabled:
            _M_GATE_1Q.inc()
        self.tensors[q] = tensordot_fused(
            mat.astype(complex), self.tensors[q], axes=((1,), (1,)),
            backend=self.backend).transpose(1, 0, 2)
        self.revision += 1

    def apply_two_qubit(self, mat: np.ndarray, q1: int, q2: int) -> None:
        """Apply a 4x4 unitary on (q1, q2); routes non-adjacent pairs.

        The matrix is in the |q1 q2> basis (first qubit = MSB).  Non-adjacent
        pairs are handled by swapping q1 next to q2 and back, as the paper's
        simulator does for the Hadamard-test ancilla couplings.  The swap
        schedule is a precomputed :func:`routing_plan`, memoized per
        (q1, q2) pair so repeated long-range gates - e.g. every
        Hadamard-test ancilla coupling of an optimizer iteration - reuse
        the same flat plan instead of re-deriving the chain recursively.
        """
        if q1 == q2:
            raise ValidationError("two-qubit gate needs distinct qubits")
        for q in (q1, q2):
            if q < 0 or q >= self.n_qubits:
                raise ValidationError(f"qubit {q} out of range")
        plan = routing_plan(q1, q2)
        if _obs.REGISTRY.enabled:
            _M_GATE_2Q.inc()
            _M_ROUTE_REQUESTS.inc()
            if plan.n_swaps:
                _M_SWAP.inc(plan.n_swaps)
        gate = np.asarray(mat, complex)
        if plan.permute:
            gate = _permute4(gate)
        for lo in plan.swaps_in:
            self._apply_adjacent(_SWAP, lo)
        self._apply_adjacent(gate, plan.gate_site)
        for lo in plan.swaps_out:
            self._apply_adjacent(_SWAP, lo)

    def _apply_adjacent(self, mat: np.ndarray, q: int) -> None:
        """Gate on sites (q, q+1) via Eqs. 7-10 of the paper."""
        b1, b2 = self.tensors[q], self.tensors[q + 1]
        gate = mat.reshape(2, 2, 2, 2)  # [i_out, j_out, i_in, j_in]
        # Eq. 7: M[l, i, j, r]
        theta = tensordot_fused(b1, b2, axes=((2,), (0,)),
                                backend=self.backend)      # l i' j' r
        m = tensordot_fused(gate, theta, axes=((2, 3), (1, 2)),
                            backend=self.backend)          # i j l r
        m = m.transpose(2, 0, 1, 3)                        # l i j r
        # Eq. 8: scale by the left bond's Schmidt values
        lam_left = self.lambdas[q]
        m_scaled = m * lam_left[:, None, None, None]
        dl, _, _, dr = m.shape
        # Eq. 9: SVD + truncation
        u, s, vh, disc = svd_truncated(
            m_scaled.reshape(dl * 2, 2 * dr),
            self.max_bond_dimension, self.cutoff, backend=self.backend)
        chi = s.size
        if _obs.REGISTRY.enabled:
            _M_SVD.inc()
        self.stats.record(disc, chi, bond=q + 1)
        if (self.max_truncation_error is not None
                and self.stats.total_discarded_weight
                > self.max_truncation_error):
            raise TruncationOverflowError(
                f"accumulated truncation error "
                f"{self.stats.total_discarded_weight:.3e} exceeds limit "
                f"{self.max_truncation_error:.3e} (D="
                f"{self.max_bond_dimension})",
                accumulated_error=self.stats.total_discarded_weight,
            )
        s_norm = np.linalg.norm(s)
        self.lambdas[q + 1] = s / s_norm
        new_b2 = vh.reshape(chi, 2, dr)
        self.tensors[q + 1] = new_b2
        if self.update_scheme == "vidal":
            # divide the left Schmidt values back out of U S - correct in
            # exact arithmetic but amplifies noise when lambdas are small
            lam_safe = np.where(lam_left > 1e-14, lam_left, 1.0)
            new_b1 = ((u * s[None, :] / np.linalg.norm(s))
                      .reshape(dl, 2, chi)
                      / lam_safe[:, None, None])
        else:
            # Eq. 10 (Hastings): B_q = M V+, right-canonical by construction
            new_b1 = tensordot_fused(m, new_b2.conj(), axes=((2, 3), (1, 2)),
                                     backend=self.backend)  # l i chi
        if disc > 0.0:
            # truncation removed weight; restore normalization exactly using
            # the local norm sum_l lambda_l^2 |B_q[l,:,:]|^2 (left part is
            # canonical, right part is isometric); |.|^2 row sums beat the
            # three-operand einsum here - no complex multiplies
            row_norms = (new_b1.real ** 2 + new_b1.imag ** 2) \
                .reshape(new_b1.shape[0], -1).sum(axis=1)
            local = float((lam_left * lam_left) @ row_norms)
            if local <= 0.0:
                raise ValidationError("state collapsed during truncation")
            new_b1 = new_b1 / np.sqrt(local)
        self.tensors[q] = new_b1
        self.revision += 1

    # -- measurement -----------------------------------------------------------------

    def expectation_local(self, ops: dict[int, np.ndarray]) -> complex:
        """<psi| prod_q O_q |psi> for single-site operators O_q (Eq. 11).

        The transfer contraction runs over the contiguous range spanning the
        support; identity is used on gap sites; the right-canonical identity
        closes the contraction past the last site.
        """
        if not ops:
            return 1.0 + 0.0j
        sites = sorted(ops)
        if sites[0] < 0 or sites[-1] >= self.n_qubits:
            raise ValidationError("operator support out of range")
        s0 = sites[0]
        lam = self.lambdas[s0]
        env = np.diag((lam * lam).astype(complex))  # [ket, bra]
        for q in range(s0, sites[-1] + 1):
            b = self.tensors[q]
            op = ops.get(q)
            if op is None:
                bk = b
            else:
                bk = tensordot_fused(np.asarray(op, complex), b,
                                     axes=((1,), (1,)),
                                     backend=self.backend).transpose(1, 0, 2)
            # env'[r, s] = sum_{l, m, i} env[l, m] bk[l, i, r] conj(b[m, i, s])
            tmp = tensordot_fused(env, bk, axes=((0,), (0,)),
                                  backend=self.backend)      # m i r
            env = tensordot_fused(tmp, b.conj(), axes=((0, 1), (0, 1)),
                                  backend=self.backend)      # r s
        return complex(np.trace(env))

    def expectation_pauli(self, term) -> float:
        """<psi| P |psi> for a Pauli string (uses the local-op contraction)."""
        from repro.circuits.gates import GATE_MATRICES

        ops = {q: GATE_MATRICES[ch] for q, ch in term.ops()}
        return float(np.real(self.expectation_local(ops)))

    def amplitude(self, bits: str) -> complex:
        """Amplitude <b|psi> of one computational basis state."""
        if len(bits) != self.n_qubits:
            raise ValidationError("bitstring length mismatch")
        vec = np.ones((1,), dtype=complex)
        for q, b in enumerate(bits):
            vec = tensordot_fused(vec, self.tensors[q][:, int(b), :],
                                  axes=((0,), (0,)), backend=self.backend)
        return complex(vec[0])

    def to_statevector(self) -> np.ndarray:
        """Dense amplitudes (small n only), qubit 0 = most significant bit."""
        if self.n_qubits > 22:
            raise ValidationError(
                f"refusing dense expansion of {self.n_qubits} qubits"
            )
        out = self.tensors[0]  # (1, 2, D)
        for q in range(1, self.n_qubits):
            out = tensordot_fused(out, self.tensors[q], axes=((out.ndim - 1,),
                                                              (0,)),
                                  backend=self.backend)
        return out.reshape(-1)

    def sample(self, n_samples: int, seed: int | None = None) -> list[str]:
        """Draw computational-basis samples by sequential conditioning.

        Exploits the right-canonical form: sweeping left to right, the
        conditional distribution of qubit k given the already-sampled
        prefix comes from one small contraction per site, never
        materializing the 2^n distribution.  All samples advance together:
        their left-bond environment vectors are stacked into one
        (n_samples, D) matrix, so each site costs two GEMMs for the whole
        batch instead of a Python-level loop per sample.  (This is the
        measurement primitive a sampling-based benchmark like the paper's
        RQC references would use.)
        """
        if n_samples < 1:
            raise ValidationError("need at least one sample")
        rng = default_rng(seed)
        # env: one amplitude row per in-flight sample over the left bond
        env = np.ones((n_samples, 1), dtype=complex)
        bits = np.empty((n_samples, self.n_qubits), dtype=np.uint8)
        for k in range(self.n_qubits):
            b = self.tensors[k]
            dl, _, dr = b.shape
            # unnormalized amplitudes of extending every prefix by 0/1:
            # both branches in ONE fused GEMM against the (dl, 2*dr)
            # unfolding instead of two half-width multiplies
            both = env @ b.reshape(dl, 2 * dr)
            vec0, vec1 = both[:, :dr], both[:, dr:]
            # right-canonicality: P(prefix+i) = |vec_i|^2; squared-modulus
            # row sums avoid the complex einsum products
            p0 = (vec0.real ** 2 + vec0.imag ** 2).sum(axis=1)
            p1 = (vec1.real ** 2 + vec1.imag ** 2).sum(axis=1)
            total = p0 + p1
            if np.any(total <= 0.0):
                raise ValidationError("zero-norm branch while sampling")
            take1 = rng.random(n_samples) >= p0 / total
            bits[:, k] = take1
            env = np.where(take1[:, None], vec1, vec0)
            norm = np.sqrt(np.where(take1, p1, p0))
            env = env / np.where(norm > 0.0, norm, 1.0)[:, None]
        return ["".join("1" if v else "0" for v in row) for row in bits]

    def copy(self) -> "MPS":
        other = MPS(self.n_qubits,
                    max_bond_dimension=self.max_bond_dimension,
                    cutoff=self.cutoff,
                    max_truncation_error=self.max_truncation_error,
                    backend=self.backend,
                    update_scheme=self.update_scheme)
        other.tensors = [t.copy() for t in self.tensors]
        other.lambdas = [l.copy() for l in self.lambdas]
        other.stats = TruncationStats(
            self.stats.total_discarded_weight,
            self.stats.max_discarded_weight,
            self.stats.truncation_events,
            self.stats.max_bond_dimension_reached,
            dict(self.stats.per_bond_discarded_weight),
        )
        return other


def _permute4(mat: np.ndarray) -> np.ndarray:
    """Reverse qubit order of a 4x4 matrix: |ab> -> |ba> relabelling."""
    perm = [0, 2, 1, 3]
    return mat[np.ix_(perm, perm)]


@dataclass(frozen=True)
class RoutingPlan:
    """Precomputed adjacent-gate schedule for one (q1, q2) gate pair.

    ``swaps_in`` moves q1's content next to q2, the (possibly permuted)
    gate is applied on the adjacent pair at ``gate_site``, and
    ``swaps_out`` restores the original qubit order.  Plans depend only on
    the pair, never on the state, so they are memoized process-wide and
    shared across gates, circuits and optimizer iterations.
    """

    swaps_in: tuple[int, ...]
    gate_site: int
    permute: bool
    swaps_out: tuple[int, ...]

    @property
    def n_swaps(self) -> int:
        """Total adjacent SWAP applications the plan costs."""
        return len(self.swaps_in) + len(self.swaps_out)


#: bounded LRU of derived routing plans; every circuit ansatz reuses a
#: handful of pairs, so the bound only matters for adversarial gate streams
_ROUTING_CACHE: "OrderedDict[tuple[int, int], RoutingPlan]" = OrderedDict()
_ROUTING_CACHE_MAX = 1024

#: promoted cross-request store (see repro.serve.cache); routing plans
#: live there under this namespace when a job service has promoted the
#: module caches into its shared tier
_ROUTING_NAMESPACE = "mps.routing"
_SHARED_CACHE = None


def set_shared_cache(store) -> None:
    """Install (or with ``None`` remove) a promoted cross-request store."""
    global _SHARED_CACHE
    _SHARED_CACHE = store


def _derive_routing_plan(q1: int, q2: int) -> RoutingPlan:
    """Derive the swap schedule for one (q1, q2) pair (uncached)."""
    if q1 < q2:
        swaps_in = tuple(range(q1, q2 - 1))
        return RoutingPlan(swaps_in=swaps_in, gate_site=q2 - 1,
                           permute=False, swaps_out=swaps_in[::-1])
    swaps_in = tuple(range(q1 - 1, q2, -1))
    return RoutingPlan(swaps_in=swaps_in, gate_site=q2,
                       permute=True, swaps_out=swaps_in[::-1])


def routing_plan(q1: int, q2: int) -> RoutingPlan:
    """The memoized swap schedule routing a (q1, q2) gate onto the chain.

    Matches the recursive route the simulator historically produced: q1's
    content walks site by site until adjacent to q2, the gate acts there
    (permuted when the pair arrives in (high, low) order), and the walk is
    retraced.  Plans are pure functions of the pair and live in a bounded
    LRU (:data:`_ROUTING_CACHE_MAX` entries) whose hits, misses and
    evictions are exported as ``mps.routing_plan.*`` counters.
    """
    key = (q1, q2)
    shared = _SHARED_CACHE
    if shared is not None:
        hit, found = shared.lookup(_ROUTING_NAMESPACE, key)
        if found:
            _M_ROUTE_HITS.inc()
            return hit
        if q1 == q2:
            raise ValidationError("two-qubit gate needs distinct qubits")
        _M_ROUTE_MISSES.inc()
        plan = _derive_routing_plan(q1, q2)
        shared.insert(_ROUTING_NAMESPACE, key, plan)
        return plan
    hit = _ROUTING_CACHE.get(key)
    if hit is not None:
        _ROUTING_CACHE.move_to_end(key)
        _M_ROUTE_HITS.inc()
        return hit
    if q1 == q2:
        raise ValidationError("two-qubit gate needs distinct qubits")
    _M_ROUTE_MISSES.inc()
    plan = _derive_routing_plan(q1, q2)
    if len(_ROUTING_CACHE) >= _ROUTING_CACHE_MAX:
        _ROUTING_CACHE.popitem(last=False)
        _M_ROUTE_EVICTIONS.inc()
    _ROUTING_CACHE[key] = plan
    return plan


def _routing_cache_info() -> dict:
    """Size/bound snapshot of the routing-plan LRU (tests, debugging)."""
    return {"size": len(_ROUTING_CACHE), "maxsize": _ROUTING_CACHE_MAX}


# lru_cache-compatible management surface (tests and callers use these)
routing_plan.cache_clear = _ROUTING_CACHE.clear
routing_plan.cache_info = _routing_cache_info
