"""Dense state-vector simulator (the qiskit-SV baseline of Figs. 2c and 8).

Stores the full 2^n amplitude vector; gate application reshapes the state
into a rank-n tensor and contracts the gate on the target axes.  Memory is
the paper's point: 16 bytes * 2^n means ~45 qubits saturate a supercomputer,
which is why the MPS simulator exists.

Qubit 0 is the most significant index bit (matching
:meth:`repro.operators.pauli.PauliTerm.matrix`).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.circuits.circuit import Circuit
from repro.operators.pauli import PauliTerm, QubitOperator
from repro.simulators.pauli_kernels import (
    MAX_COMPILED_QUBITS,
    compile_observable,
)


class StatevectorSimulator:
    """Exact dense simulation of bound circuits.

    Parameters
    ----------
    n_qubits:
        Register width (memory check refuses > ``max_qubits``).
    max_qubits:
        Hard safety limit on the dense representation.
    """

    #: dense amplitude access is native, so batched Pauli kernels apply
    natively_dense = True

    def __init__(self, n_qubits: int, *, max_qubits: int = 26):
        if n_qubits < 1:
            raise ValidationError("need at least one qubit")
        if n_qubits > max_qubits:
            raise ValidationError(
                f"{n_qubits} qubits need {16 * 2 ** n_qubits / 1e9:.1f} GB; "
                f"raise max_qubits to allow"
            )
        self.n_qubits = n_qubits
        self.state = np.zeros((2,) * n_qubits, dtype=complex)
        self.state[(0,) * n_qubits] = 1.0

    # -- state management -----------------------------------------------------

    def reset(self) -> None:
        self.state.fill(0.0)
        self.state[(0,) * self.n_qubits] = 1.0

    def set_state(self, vec: np.ndarray) -> None:
        vec = np.asarray(vec, dtype=complex)
        if vec.size != 2 ** self.n_qubits:
            raise ValidationError(
                f"state size {vec.size} != 2^{self.n_qubits}"
            )
        self.state = vec.reshape((2,) * self.n_qubits).copy()

    def statevector(self) -> np.ndarray:
        """Flat copy of the amplitudes (qubit 0 = most significant bit)."""
        return self.state.reshape(-1).copy()

    def copy(self) -> "StatevectorSimulator":
        """Independent snapshot of the current state (same width)."""
        clone = StatevectorSimulator(self.n_qubits,
                                     max_qubits=max(self.n_qubits, 26))
        clone.state = self.state.copy()
        return clone

    def norm(self) -> float:
        return float(np.linalg.norm(self.state))

    # -- gates ---------------------------------------------------------------------

    def apply_gate(self, gate) -> None:
        mat = gate.matrix()
        if gate.n_qubits == 1:
            self._apply_matrix(mat, gate.qubits)
        else:
            self._apply_matrix(mat.reshape(2, 2, 2, 2), gate.qubits)

    def _apply_matrix(self, mat: np.ndarray, qubits: tuple[int, ...]) -> None:
        k = len(qubits)
        axes_in = list(range(k, 2 * k))
        moved = np.tensordot(mat, self.state, axes=(axes_in, list(qubits)))
        # tensordot puts the gate's output axes first; move them back
        self.state = np.moveaxis(moved, list(range(k)), list(qubits))

    def run(self, circuit: Circuit) -> "StatevectorSimulator":
        """Apply all gates of a bound circuit (in place; returns self)."""
        if circuit.n_qubits != self.n_qubits:
            raise ValidationError(
                f"circuit width {circuit.n_qubits} != register {self.n_qubits}"
            )
        for g in circuit.gates:
            self.apply_gate(g)
        return self

    # -- measurement -------------------------------------------------------------------

    def expectation_pauli(self, term: PauliTerm) -> float:
        """<psi| P |psi> for a Pauli string (real by hermiticity)."""
        psi = self.state
        phi = psi
        for q, ch in term.ops():
            mat = _PAULIS[ch]
            moved = np.tensordot(mat, phi, axes=([1], [q]))
            phi = np.moveaxis(moved, 0, q)
        return float(np.real(np.vdot(psi, phi)))

    def expectation(self, op: QubitOperator) -> float:
        """<psi| H |psi>, batched through the compiled Pauli kernels.

        Terms sharing an X/Y flip mask are evaluated as one gather + one
        diagonal multiply (see :mod:`repro.simulators.pauli_kernels`);
        compiled observables are cached, so repeated measurement of the
        same operator pays compilation once.
        """
        if self.n_qubits > MAX_COMPILED_QUBITS:
            return self.expectation_per_term(op)
        compiled = compile_observable(op, self.n_qubits)
        return compiled.expectation(self.state.reshape(-1))

    def expectation_per_term(self, op: QubitOperator) -> float:
        """Reference per-term contraction loop (the unbatched baseline)."""
        total = 0.0 + 0.0j
        for term, coeff in op:
            if term.is_identity():
                total += coeff
            else:
                total += coeff * self.expectation_pauli(term)
        return float(np.real(total))

    def probability_of_bit(self, qubit: int, value: int) -> float:
        """Probability of measuring ``qubit`` in ``value`` (0/1)."""
        idx = [slice(None)] * self.n_qubits
        idx[qubit] = value
        return float(np.sum(np.abs(self.state[tuple(idx)]) ** 2))

    def amplitude(self, bits: str) -> complex:
        """Amplitude of a computational basis state given as a bitstring."""
        if len(bits) != self.n_qubits:
            raise ValidationError("bitstring length mismatch")
        return complex(self.state[tuple(int(b) for b in bits)])

    def sample(self, n_samples: int, seed: int | None = None) -> list[str]:
        """Computational-basis samples from |amplitudes|^2 (qubit 0 first)."""
        if n_samples < 1:
            raise ValidationError("need at least one sample")
        from repro.common.rng import default_rng

        probs = np.abs(self.state.reshape(-1)) ** 2
        probs = probs / probs.sum()
        draws = default_rng(seed).choice(probs.size, size=n_samples, p=probs)
        return [format(int(d), f"0{self.n_qubits}b") for d in draws]


_PAULIS = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}
