"""Matrix Product Operators built from weighted Pauli strings.

Support for the DMRG extension (Sec. III-A of the paper notes the MPS-VQE
ansatz "may well [be] substitute[d] by another MPS based optimization
algorithm such as DMRG" at equal expressiveness).  A QubitOperator is first
laid out as an exact MPO of bond dimension = #terms, then compressed by
successive SVDs, which collapses the typical molecular Hamiltonian to a
modest bond dimension.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.operators.pauli import QubitOperator
from repro.simulators.kernels import svd_truncated, tensordot_fused

_PAULI_MATS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class MPO:
    """An MPO over qubits: tensors W[k] of shape (Dl, 2, 2, Dr)."""

    def __init__(self, tensors: list[np.ndarray]):
        if not tensors:
            raise ValidationError("empty MPO")
        for k, w in enumerate(tensors):
            if w.ndim != 4 or w.shape[1] != 2 or w.shape[2] != 2:
                raise ValidationError(f"bad MPO tensor shape at site {k}")
        self.tensors = tensors

    @property
    def n_qubits(self) -> int:
        return len(self.tensors)

    def bond_dimensions(self) -> list[int]:
        return [w.shape[3] for w in self.tensors[:-1]]

    @classmethod
    def from_qubit_operator(cls, op: QubitOperator, n_qubits: int,
                            compress_cutoff: float = 1e-12) -> "MPO":
        """Sum-of-strings MPO, compressed incrementally while it is built.

        Each bond channel indexes a *distinct Pauli suffix* (the remaining
        string on the sites to the right), so terms sharing a tail merge
        immediately; the first site carries the coefficients and interior
        sites route every suffix class through its leading Pauli factor.
        After each site the left part is SVD-compressed, and because the
        carried matrix is exactly the prefix-basis x suffix-class
        coefficient matrix, its rank is the *minimal* MPO bond dimension
        at that cut - the build therefore truncates to the final bond
        dimensions on the fly instead of dragging O(#terms)-wide bonds
        through the chain.
        """
        terms = list(op.simplify(0.0).terms.items())
        if not terms:
            raise ValidationError("cannot build an MPO from the zero operator")
        if n_qubits < 1:
            raise ValidationError("n_qubits must be positive")
        labels = [term.label(n_qubits) for term, _ in terms]
        if n_qubits == 1:
            w = np.zeros((1, 2, 2, 1), dtype=complex)
            for (term, coeff), lab in zip(terms, labels):
                w[0, :, :, 0] += coeff * _PAULI_MATS[lab[0]]
            return cls([w])
        tensors: list[np.ndarray] = []
        # suffixes[c]: the Pauli string on sites k.. carried by channel c;
        # carry[r, c]: weight of channel c in compressed left-bond state r.
        suffixes: list[str] = labels
        carry = np.array([[coeff for _, coeff in terms]], dtype=complex)
        for k in range(n_qubits - 1):
            r = carry.shape[0]
            rest_index: dict[str, int] = {}
            col_char: list[str] = []
            col_new: list[int] = []
            for s in suffixes:
                rest = s[1:]
                col_char.append(s[0])
                col_new.append(rest_index.setdefault(rest, len(rest_index)))
            m_new = len(rest_index)
            w = np.zeros((r, 2, 2, m_new), dtype=complex)
            for ch, mat in _PAULI_MATS.items():
                old = [c for c, cc in enumerate(col_char) if cc == ch]
                if old:
                    # (ch, rest) determines the old channel, so within one
                    # character group the old->new map is injective.
                    new = [col_new[c] for c in old]
                    w[:, :, :, new] += (mat[None, :, :, None]
                                        * carry[:, None, None, old])
            u, s, vh, _ = svd_truncated(w.reshape(r * 4, m_new),
                                        cutoff=compress_cutoff)
            tensors.append(u.reshape(r, 2, 2, s.size))
            carry = s[:, None] * vh
            suffixes = sorted(rest_index, key=rest_index.get)
        wl = np.zeros((carry.shape[0], 2, 2, 1), dtype=complex)
        for ch, mat in _PAULI_MATS.items():
            cols = [c for c, s in enumerate(suffixes) if s == ch]
            if cols:
                wl[:, :, :, 0] += carry[:, cols].sum(axis=1)[:, None, None] \
                    * mat[None, :, :]
        tensors.append(wl)
        mpo = cls(tensors)
        mpo._compress(compress_cutoff)
        return mpo

    def _compress(self, cutoff: float) -> None:
        """Two SVD sweeps shrinking redundant bond dimensions."""
        n = self.n_qubits
        # left-to-right
        for k in range(n - 1):
            w = self.tensors[k]
            dl, _, _, dr = w.shape
            mat = w.reshape(dl * 4, dr)
            u, s, vh, _ = svd_truncated(mat, cutoff=cutoff)
            self.tensors[k] = u.reshape(dl, 2, 2, s.size)
            carry = (s[:, None] * vh)
            self.tensors[k + 1] = tensordot_fused(
                carry, self.tensors[k + 1], axes=((1,), (0,)))
        # right-to-left
        for k in range(n - 1, 0, -1):
            w = self.tensors[k]
            dl, _, _, dr = w.shape
            mat = w.reshape(dl, 4 * dr)
            u, s, vh, _ = svd_truncated(mat, cutoff=cutoff)
            self.tensors[k] = vh.reshape(s.size, 2, 2, dr)
            carry = u * s[None, :]
            self.tensors[k - 1] = tensordot_fused(
                self.tensors[k - 1], carry, axes=((3,), (0,)))

    def apply(self, mps, *, cutoff: float = 1e-13,
              max_bond_dimension: int | None = None):
        """``O|psi>`` as a normalized right-canonical MPS plus its norm.

        A left-to-right *zip-up* sweep contracts one MPO tensor into one
        site tensor at a time and immediately SVD-splits the result, so the
        working bond never exceeds ``(previous rank) * 2`` instead of the
        naive ``D_psi * D_mpo`` product; with ``cutoff`` at numerical noise
        the kept rank is the exact Schmidt rank of ``O|psi>`` (capped at
        ``min(2^b, 2^(n-b))``).  The sweep leaves left-canonical tensors
        whose norm sits entirely in the last site, so ``||O|psi>||`` is
        read off before the standard canonicalization sweeps restore the
        right-canonical form + Schmidt values the gate/measurement kernels
        require.  Returns ``(mps_out, norm)`` with ``mps_out`` normalized;
        the caller carries the scalar.
        """
        from repro.simulators.mps import MPS, TruncationStats

        n = self.n_qubits
        if mps.n_qubits != n:
            raise ValidationError(
                f"MPO register {n} != state register {mps.n_qubits}"
            )
        carry = np.ones((1, 1, 1), dtype=complex)  # (new bond, ket, mpo)
        tensors: list[np.ndarray] = []
        for k in range(n):
            b = mps.tensors[k]
            w = self.tensors[k]
            # t[x, j, c, d] = carry[x, a, m] B[a, i, c] W[m, j, i, d]
            t = np.einsum("xam,aic,mjid->xjcd", carry, b, w, optimize=True)
            x, _, ac, mc = t.shape
            if k == n - 1:
                tensors.append(t.reshape(x, 2, ac * mc))
                break
            u, s, vh, _ = svd_truncated(t.reshape(x * 2, ac * mc),
                                        max_bond_dimension, cutoff)
            tensors.append(u.reshape(x, 2, s.size))
            carry = (s[:, None] * vh).reshape(s.size, ac, mc)
        norm = float(np.linalg.norm(tensors[-1]))
        if norm == 0.0:
            raise ValidationError("operator annihilates the state")
        out = MPS(n, max_bond_dimension=max_bond_dimension, cutoff=cutoff)
        out.tensors = tensors
        out._canonicalize()
        out.stats = TruncationStats()  # construction is not evolution
        return out, norm

    def matrix(self) -> np.ndarray:
        """Dense matrix (tests only)."""
        if self.n_qubits > 12:
            raise ValidationError("refusing dense MPO expansion")
        out = self.tensors[0]  # (1, 2, 2, D)
        for k in range(1, self.n_qubits):
            out = np.einsum("aijb,bklc->aikjlc", out, self.tensors[k])
            s = out.shape
            out = out.reshape(s[0], s[1] * s[2], s[3] * s[4], s[5])
        return out[0, :, :, 0]

    def expectation(self, mps) -> float:
        """<psi| MPO |psi> via the standard three-layer transfer contraction.

        Each site is three fused permute+GEMM contractions through the
        kernel plan cache (:func:`repro.simulators.kernels.tensordot_fused`)
        instead of per-call einsum path searches - the site shapes repeat
        across the chain and across VQE iterations, so the compiled plans
        amortize exactly like the gate kernels' do.
        """
        env = np.ones((1, 1, 1), dtype=complex)  # (ket, mpo, bra)
        for k in range(self.n_qubits):
            b = mps.tensors[k]
            w = self.tensors[k]
            # env[a, m, c] B[a, i, a'] W[m, i', i, m'] conj(B)[c, i', c']
            t = tensordot_fused(env, b, axes=((0,), (0,)))       # m c i a'
            t = tensordot_fused(t, w, axes=((0, 2), (0, 2)))     # c a' j m'
            env = tensordot_fused(t, b.conj(),
                                  axes=((0, 2), (0, 1)))         # a' m' c'
        return float(np.real(env[0, 0, 0]))
