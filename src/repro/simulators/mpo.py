"""Matrix Product Operators built from weighted Pauli strings.

Support for the DMRG extension (Sec. III-A of the paper notes the MPS-VQE
ansatz "may well [be] substitute[d] by another MPS based optimization
algorithm such as DMRG" at equal expressiveness).  A QubitOperator is first
laid out as an exact MPO of bond dimension = #terms, then compressed by
successive SVDs, which collapses the typical molecular Hamiltonian to a
modest bond dimension.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.operators.pauli import QubitOperator
from repro.simulators.kernels import svd_truncated, tensordot_fused

_PAULI_MATS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class MPO:
    """An MPO over qubits: tensors W[k] of shape (Dl, 2, 2, Dr)."""

    def __init__(self, tensors: list[np.ndarray]):
        if not tensors:
            raise ValidationError("empty MPO")
        for k, w in enumerate(tensors):
            if w.ndim != 4 or w.shape[1] != 2 or w.shape[2] != 2:
                raise ValidationError(f"bad MPO tensor shape at site {k}")
        self.tensors = tensors

    @property
    def n_qubits(self) -> int:
        return len(self.tensors)

    def bond_dimensions(self) -> list[int]:
        return [w.shape[3] for w in self.tensors[:-1]]

    @classmethod
    def from_qubit_operator(cls, op: QubitOperator, n_qubits: int,
                            compress_cutoff: float = 1e-12) -> "MPO":
        """Exact sum-of-strings MPO (bond dim = #terms), then compression.

        Term t occupies the diagonal bond channel t: the first site carries
        the coefficient, interior sites route each channel through its
        Pauli factor, and the last site closes every channel.
        """
        terms = list(op.simplify(0.0).terms.items())
        if not terms:
            raise ValidationError("cannot build an MPO from the zero operator")
        if n_qubits < 1:
            raise ValidationError("n_qubits must be positive")
        m = len(terms)
        labels = [term.label(n_qubits) for term, _ in terms]
        if n_qubits == 1:
            w = np.zeros((1, 2, 2, 1), dtype=complex)
            for (term, coeff), lab in zip(terms, labels):
                w[0, :, :, 0] += coeff * _PAULI_MATS[lab[0]]
            return cls([w])
        tensors: list[np.ndarray] = []
        w0 = np.zeros((1, 2, 2, m), dtype=complex)
        for t, (term, coeff) in enumerate(terms):
            w0[0, :, :, t] = coeff * _PAULI_MATS[labels[t][0]]
        tensors.append(w0)
        for k in range(1, n_qubits - 1):
            w = np.zeros((m, 2, 2, m), dtype=complex)
            for t in range(m):
                w[t, :, :, t] = _PAULI_MATS[labels[t][k]]
            tensors.append(w)
        wl = np.zeros((m, 2, 2, 1), dtype=complex)
        for t in range(m):
            wl[t, :, :, 0] = _PAULI_MATS[labels[t][n_qubits - 1]]
        tensors.append(wl)
        mpo = cls(tensors)
        mpo._compress(compress_cutoff)
        return mpo

    def _compress(self, cutoff: float) -> None:
        """Two SVD sweeps shrinking redundant bond dimensions."""
        n = self.n_qubits
        # left-to-right
        for k in range(n - 1):
            w = self.tensors[k]
            dl, _, _, dr = w.shape
            mat = w.reshape(dl * 4, dr)
            u, s, vh, _ = svd_truncated(mat, cutoff=cutoff)
            self.tensors[k] = u.reshape(dl, 2, 2, s.size)
            carry = (s[:, None] * vh)
            self.tensors[k + 1] = tensordot_fused(
                carry, self.tensors[k + 1], axes=((1,), (0,)))
        # right-to-left
        for k in range(n - 1, 0, -1):
            w = self.tensors[k]
            dl, _, _, dr = w.shape
            mat = w.reshape(dl, 4 * dr)
            u, s, vh, _ = svd_truncated(mat, cutoff=cutoff)
            self.tensors[k] = vh.reshape(s.size, 2, 2, dr)
            carry = u * s[None, :]
            self.tensors[k - 1] = tensordot_fused(
                self.tensors[k - 1], carry, axes=((3,), (0,)))

    def matrix(self) -> np.ndarray:
        """Dense matrix (tests only)."""
        if self.n_qubits > 12:
            raise ValidationError("refusing dense MPO expansion")
        out = self.tensors[0]  # (1, 2, 2, D)
        for k in range(1, self.n_qubits):
            out = np.einsum("aijb,bklc->aikjlc", out, self.tensors[k])
            s = out.shape
            out = out.reshape(s[0], s[1] * s[2], s[3] * s[4], s[5])
        return out[0, :, :, 0]

    def expectation(self, mps) -> float:
        """<psi| MPO |psi> via the standard three-layer transfer contraction."""
        env = np.ones((1, 1, 1), dtype=complex)  # (ket, mpo, bra)
        for k in range(self.n_qubits):
            b = mps.tensors[k]
            w = self.tensors[k]
            # env[a, m, c] B[a, i, a'] W[m, i', i, m'] conj(B)[c, i', c']
            tmp = np.einsum("amc,aib->mcib", env, b, optimize=True)
            tmp = np.einsum("mcib,mjin->cbjn", tmp, w, optimize=True)
            env = np.einsum("cbjn,cjd->bnd", tmp, b.conj(), optimize=True)
        return float(np.real(env[0, 0, 0]))
