"""Shared dense Pauli kernels: permutation+phase actions, batched observables.

A Pauli string acts on the computational basis as a signed permutation,

    P |b> = phase(b) |b ^ xmask>,

so on a dense amplitude vector it costs one gather and one diagonal multiply
— no per-qubit tensor reshapes.  Strings sharing an X/Y flip mask share the
*same* permutation, so a whole :class:`~repro.operators.pauli.QubitOperator`
compiles into one complex diagonal plus one index gather per *distinct* mask
(:class:`CompiledObservable`): molecular Hamiltonians compress roughly 7x,
turning the O(terms x weight) per-term contraction loop into O(#masks)
vector passes.

This module is the layer both the fast UCC evaluator
(:mod:`repro.vqe.fast_sv`) and the dense circuit simulators build on; every
backend registered in :mod:`repro.backends` that exposes a dense state gets
batched expectations through it.  Conventions match the statevector
simulator: qubit 0 is the most significant index bit.
"""

from __future__ import annotations

import numpy as np

from repro.common.bits import popcount
from repro.common.errors import ValidationError
from repro.obs import metrics as _obs
from repro.operators.pauli import PauliTerm, QubitOperator

# observability instruments (no-ops unless `repro.obs` is enabled)
_M_COMPILES = _obs.counter(
    "pauli.compiles", "dense observables compiled into flip-mask groups")
_M_BATCH_TERMS = _obs.histogram(
    "pauli.compiled_terms", "non-identity terms per compiled observable")
_M_BATCH_GROUPS = _obs.histogram(
    "pauli.compiled_mask_groups",
    "distinct flip-mask groups per compiled observable (the batch size: "
    "gathers per evaluation)")
_M_EXPECT = _obs.counter(
    "pauli.expectations", "batched dense expectation evaluations")
_M_COMPILE_CACHE = _obs.counter(
    "pauli.compile_cache",
    "compiled-observable cache lookups, labelled hit/miss")
_M_MODEL_FLOPS = _obs.counter(
    "pauli.modeled_flops",
    "modeled flops per batched expectation (one complex "
    "multiply-accumulate = 8 flops, 2G+1 vector passes over 2^n "
    "amplitudes)", unit="flop")
_M_MODEL_BYTES = _obs.counter(
    "pauli.modeled_bytes",
    "modeled bytes moved per batched expectation (3G+2 complex-vector "
    "streams of 16 bytes per amplitude)", unit="byte")

#: refuse to compile diagonals beyond this register width (dense memory wall)
MAX_COMPILED_QUBITS = 26


def term_masks(term: PauliTerm, n_qubits: int) -> tuple[int, int, int]:
    """(xmask, zbits, n_y) of a Pauli string in MSB-first index convention.

    ``xmask`` flips the basis index, ``zbits`` selects the bits whose parity
    signs the amplitude, ``n_y`` counts Y factors (each contributes a global
    factor i with the canonical Y = iXZ convention).
    """
    if term.support >> n_qubits:
        raise ValidationError(
            f"term {term!r} acts outside a {n_qubits}-qubit register"
        )
    xmask = 0
    zbits = 0
    for q, ch in term.ops():
        bit = 1 << (n_qubits - 1 - q)  # qubit 0 = most significant
        if ch in ("X", "Y"):
            xmask |= bit
        if ch in ("Z", "Y"):
            zbits |= bit
    return xmask, zbits, popcount(term.x & term.z)


def phase_vector(term: PauliTerm, n_qubits: int) -> np.ndarray:
    """phase(b) over all basis states b = j ^ xmask (the gather sources)."""
    xmask, zbits, n_y = term_masks(term, n_qubits)
    src = np.arange(1 << n_qubits) ^ xmask
    signs = np.where(np.bitwise_count(src & zbits) & 1, -1.0, 1.0)
    return (1j ** (n_y % 4)) * signs


class PauliAction:
    """Precomputed permutation+phase action of one Pauli string."""

    __slots__ = ("perm", "phase")

    def __init__(self, term: PauliTerm, n_qubits: int):
        xmask, zbits, n_y = term_masks(term, n_qubits)
        src = np.arange(1 << n_qubits) ^ xmask
        signs = np.where(np.bitwise_count(src & zbits) & 1, -1.0, 1.0)
        self.perm = src
        self.phase = (1j ** (n_y % 4)) * signs

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """P |psi> as one gather + one diagonal multiply."""
        return self.phase * psi[self.perm]


class CompiledObservable:
    """A :class:`QubitOperator` compiled for batched dense evaluation.

    Terms are grouped by their X/Y flip mask; each group collapses into a
    single complex diagonal sharing one basis permutation, so applying (or
    measuring) the whole operator costs one gather + one multiply per
    *distinct* mask instead of one contraction per term.  Compile once per
    Hamiltonian, evaluate every optimizer iteration.

    Parameters
    ----------
    op:
        The operator to compile (need not be hermitian; ``expectation``
        returns the real part as every measurement path does).
    n_qubits:
        Register width (defaults to the operator's minimal width).
    """

    __slots__ = ("n_qubits", "constant", "n_terms", "_groups")

    def __init__(self, op: QubitOperator, n_qubits: int | None = None):
        n = op.n_qubits() if n_qubits is None else int(n_qubits)
        n = max(n, 1)
        if n > MAX_COMPILED_QUBITS:
            raise ValidationError(
                f"refusing to compile a dense observable on {n} qubits "
                f"(cap {MAX_COMPILED_QUBITS})"
            )
        dim = 1 << n
        self.n_qubits = n
        self.constant = complex(op.constant())
        self.n_terms = 0
        # xmask -> summed complex diagonal (phases weighted by coefficients)
        diags: dict[int, np.ndarray] = {}
        for term, coeff in op:
            if term.is_identity():
                continue
            self.n_terms += 1
            xmask, zbits, n_y = term_masks(term, n)
            src = np.arange(dim) ^ xmask
            signs = np.where(np.bitwise_count(src & zbits) & 1, -1.0, 1.0)
            phase = (complex(coeff) * 1j ** (n_y % 4)) * signs
            acc = diags.get(xmask)
            if acc is None:
                diags[xmask] = phase
            else:
                acc += phase
        self._groups: list[tuple[np.ndarray | None, np.ndarray]] = []
        for xmask, diag in diags.items():
            perm = None if xmask == 0 else np.arange(dim) ^ xmask
            self._groups.append((perm, diag))
        if _obs.REGISTRY.enabled:
            _M_COMPILES.inc()
            _M_BATCH_TERMS.observe(self.n_terms)
            _M_BATCH_GROUPS.observe(len(self._groups))

    @property
    def n_groups(self) -> int:
        """Number of distinct flip-mask groups (gathers per evaluation)."""
        return len(self._groups)

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """H |psi> on a flat dense vector (qubit 0 = MSB)."""
        psi = np.asarray(psi).reshape(-1)
        out = self.constant * psi
        for perm, diag in self._groups:
            if perm is None:
                out += diag * psi
            else:
                out += diag * psi[perm]
        return out

    def expectation(self, psi: np.ndarray) -> float:
        """Re <psi| H |psi> in one pass over the mask groups."""
        _M_EXPECT.inc()
        if _obs.REGISTRY.enabled:
            # roofline bookkeeping: the vdot costs one pass, each group a
            # diag multiply + vdot (plus a gather stream when permuted)
            dim = 1 << self.n_qubits
            g = len(self._groups)
            _M_MODEL_FLOPS.inc(8 * dim * (2 * g + 1))
            _M_MODEL_BYTES.inc(16 * dim * (3 * g + 2))
        psi = np.asarray(psi).reshape(-1)
        total = self.constant * np.vdot(psi, psi)
        for perm, diag in self._groups:
            src = psi if perm is None else psi[perm]
            total += np.vdot(psi, diag * src)
        return float(np.real(total))


# -- compilation cache --------------------------------------------------------
#
# The RDM measurement path evaluates the same few hundred excitation
# operators on every DMET mu-iteration; caching compiled observables keyed by
# the operator's (symplectic masks, coefficients) content makes each repeat
# evaluation one gather per mask group with zero re-compilation.

_CACHE: dict[tuple, CompiledObservable] = {}
_CACHE_MAX = 64

#: when a cross-request store is promoted over this module cache (see
#: :func:`repro.serve.cache.promote_module_caches`), compiled observables
#: live there under this namespace instead of the bounded dict above
_SHARED_NAMESPACE = "pauli.observable"
_SHARED_CACHE = None


def set_shared_cache(store) -> None:
    """Install (or with ``None`` remove) a promoted cross-request store."""
    global _SHARED_CACHE
    _SHARED_CACHE = store


def observable_cache_key(op: QubitOperator, n_qubits: int) -> tuple:
    """Content hash of (operator, register width) for the compile cache."""
    items = tuple(sorted(
        (t.x, t.z, complex(c).real, complex(c).imag) for t, c in op
    ))
    return (n_qubits, items)


def compile_observable(op: QubitOperator,
                       n_qubits: int | None = None) -> CompiledObservable:
    """Compile (or fetch a cached) :class:`CompiledObservable`."""
    n = max(op.n_qubits(), 1) if n_qubits is None else int(n_qubits)
    key = observable_cache_key(op, n)
    shared = _SHARED_CACHE
    if shared is not None:
        hit, found = shared.lookup(_SHARED_NAMESPACE, key)
        if found:
            _M_COMPILE_CACHE.inc(outcome="hit")
            return hit
        _M_COMPILE_CACHE.inc(outcome="miss")
        hit = CompiledObservable(op, n)
        shared.insert(_SHARED_NAMESPACE, key, hit)
        return hit
    hit = _CACHE.get(key)
    if hit is None:
        _M_COMPILE_CACHE.inc(outcome="miss")
        hit = CompiledObservable(op, n)
        if len(_CACHE) >= _CACHE_MAX:
            _CACHE.pop(next(iter(_CACHE)))
        _CACHE[key] = hit
    else:
        _M_COMPILE_CACHE.inc(outcome="hit")
    return hit


def clear_observable_cache() -> None:
    """Drop every cached compiled observable (tests / memory pressure)."""
    _CACHE.clear()


__all__ = [
    "MAX_COMPILED_QUBITS",
    "PauliAction",
    "CompiledObservable",
    "compile_observable",
    "clear_observable_cache",
    "observable_cache_key",
    "set_shared_cache",
    "phase_vector",
    "term_masks",
]
