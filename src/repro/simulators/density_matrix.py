"""Dense density-matrix simulator (the 2^{2n}-memory baseline of Fig. 2c).

Stores rho as a rank-2n tensor and applies U rho U+ gate by gate.  Exists to
reproduce the paper's three-way simulator comparison; its quadratically
worse memory wall (2^{2n} amplitudes) is the measured quantity.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.circuits.circuit import Circuit
from repro.operators.pauli import PauliTerm, QubitOperator


class DensityMatrixSimulator:
    """Exact mixed-state simulation of bound circuits."""

    #: mixed states have no dense amplitude vector to hand to the kernels
    natively_dense = False

    def __init__(self, n_qubits: int, *, max_qubits: int = 13):
        if n_qubits < 1:
            raise ValidationError("need at least one qubit")
        if n_qubits > max_qubits:
            raise ValidationError(
                f"{n_qubits} qubits need {16 * 4 ** n_qubits / 1e9:.1f} GB "
                f"as a density matrix; raise max_qubits to allow"
            )
        self.n_qubits = n_qubits
        dim = 2 ** n_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        # tensor layout: first n axes = ket, last n axes = bra
        self.rho = rho.reshape((2,) * (2 * n_qubits))

    def reset(self) -> None:
        self.rho.fill(0.0)
        self.rho[(0,) * (2 * self.n_qubits)] = 1.0

    def density_matrix(self) -> np.ndarray:
        dim = 2 ** self.n_qubits
        return self.rho.reshape(dim, dim).copy()

    def copy(self) -> "DensityMatrixSimulator":
        """Independent snapshot of the current mixed state."""
        clone = DensityMatrixSimulator(self.n_qubits,
                                       max_qubits=max(self.n_qubits, 13))
        clone.rho = self.rho.copy()
        return clone

    def purity(self) -> float:
        r = self.density_matrix()
        return float(np.real(np.trace(r @ r)))

    def apply_gate(self, gate) -> None:
        k = gate.n_qubits
        mat = gate.matrix().reshape((2,) * (2 * k))
        ket_axes = list(gate.qubits)
        bra_axes = [self.n_qubits + q for q in gate.qubits]
        # U rho
        moved = np.tensordot(mat, self.rho, axes=(list(range(k, 2 * k)),
                                                  ket_axes))
        rho = np.moveaxis(moved, list(range(k)), ket_axes)
        # ... U+ : contract conj(U) on the bra axes
        moved = np.tensordot(np.conj(mat), rho, axes=(list(range(k, 2 * k)),
                                                      bra_axes))
        self.rho = np.moveaxis(moved, list(range(k)), bra_axes)

    def run(self, circuit: Circuit) -> "DensityMatrixSimulator":
        if circuit.n_qubits != self.n_qubits:
            raise ValidationError(
                f"circuit width {circuit.n_qubits} != register {self.n_qubits}"
            )
        for g in circuit.gates:
            self.apply_gate(g)
        return self

    def expectation_pauli(self, term: PauliTerm) -> float:
        """tr(rho P)."""
        rho = self.rho
        for q, ch in term.ops():
            mat = _PAULIS[ch]
            moved = np.tensordot(mat, rho, axes=([1], [q]))
            rho = np.moveaxis(moved, 0, q)
        dim = 2 ** self.n_qubits
        return float(np.real(np.trace(rho.reshape(dim, dim))))

    def expectation(self, op: QubitOperator) -> float:
        """tr(rho H) for a weighted Pauli-string operator."""
        total = 0.0 + 0.0j
        for term, coeff in op:
            if term.is_identity():
                total += coeff
            else:
                total += coeff * self.expectation_pauli(term)
        return float(np.real(total))

    def sample(self, n_samples: int, seed: int | None = None) -> list[str]:
        """Computational-basis samples from the diagonal of rho."""
        if n_samples < 1:
            raise ValidationError("need at least one sample")
        from repro.common.rng import default_rng

        probs = np.real(np.diag(self.density_matrix())).clip(min=0.0)
        probs = probs / probs.sum()
        draws = default_rng(seed).choice(probs.size, size=n_samples, p=probs)
        return [format(int(d), f"0{self.n_qubits}b") for d in draws]


_PAULIS = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}
