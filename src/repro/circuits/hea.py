"""Hardware-efficient / MPS-inspired ansatz circuits.

:func:`brick_ansatz` reproduces the circuit of the paper's Fig. 2(c): a
sequence of unitaries each entangling ``window`` consecutive qubits, applied
in sliding order.  A state prepared by such a sequential circuit has exact
MPS bond dimension at most 2^(window-1) - 8 for the paper's 4-qubit windows -
which is why the MPS simulator beats SV/DM on it at any qubit count.

:func:`random_brick_circuit` generates Haar-random nearest-neighbour
two-qubit-gate circuits for the kernel and simulator micro-benchmarks
(Sec. IV-B's x86-vs-SW comparison workload).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import unitary_group

from repro.common.errors import ValidationError
from repro.common.rng import default_rng
from repro.circuits.gates import Gate
from repro.circuits.circuit import Circuit


def brick_ansatz(n_qubits: int, window: int = 4, sweeps: int = 1) -> Circuit:
    """Parametric sliding-window entangler (Fig. 2c circuit).

    Each window [i, i+window) is entangled with a ladder of
    RY-RY-CX blocks on neighbouring pairs; windows slide by one qubit so the
    prepared state is a sequential MPS of bond dimension <= 2^(window-1).
    """
    if window < 2 or window > n_qubits:
        raise ValidationError(
            f"window={window} invalid for {n_qubits} qubits"
        )
    c = Circuit(n_qubits=n_qubits, name=f"brick_w{window}")
    m = 0
    gates: list[Gate] = []
    for _ in range(sweeps):
        for start in range(0, n_qubits - window + 1):
            for q in range(start, start + window - 1):
                gates.append(Gate("RY", (q,), param=(m, 1.0)))
                gates.append(Gate("RY", (q + 1,), param=(m + 1, 1.0)))
                gates.append(Gate("CX", (q, q + 1)))
                m += 2
    c.n_parameters = m
    c.extend(gates)
    return c


def random_brick_circuit(n_qubits: int, n_layers: int,
                         seed: int | None = None) -> Circuit:
    """Brick-pattern circuit of Haar-random two-qubit gates.

    Layer parity alternates between (0,1),(2,3),... and (1,2),(3,4),...
    pairings; all gates are nearest-neighbour, matching the Sec. IV-B
    benchmark ("2-qubit gates acting on neighbouring qubits").
    """
    if n_qubits < 2:
        raise ValidationError("need at least 2 qubits")
    rng = default_rng(seed)
    c = Circuit(n_qubits=n_qubits, name="random_brick")
    for layer in range(n_layers):
        first = layer % 2
        for q in range(first, n_qubits - 1, 2):
            u = unitary_group.rvs(4, random_state=rng)
            c.append(Gate("U2", (q, q + 1), unitary=np.asarray(u, complex)))
    return c


def random_product_layer(n_qubits: int, seed: int | None = None) -> Circuit:
    """One layer of Haar-random single-qubit gates (fusion-pass tests)."""
    rng = default_rng(seed)
    c = Circuit(n_qubits=n_qubits, name="random_1q_layer")
    for q in range(n_qubits):
        u = unitary_group.rvs(2, random_state=rng)
        c.append(Gate("U1", (q,), unitary=np.asarray(u, complex)))
    return c
