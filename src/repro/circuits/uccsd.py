"""Unitary coupled-cluster singles and doubles (UCCSD) ansatz.

Builds the physically-motivated parametric circuit of the paper (Eq. 3-4):
a Hartree-Fock reference prepared by X gates followed by the first-order
Suzuki-Trotter decomposition of exp(T - T+), with one variational parameter
per spatial-orbital excitation (spin components share their amplitude).

Under Jordan-Wigner each excitation generator maps to a set of mutually
commuting Pauli strings with purely imaginary coefficients i*c_k, so each
factor exp(theta_m (tau_m - tau_m+)) compiles exactly into CNOT-staircase
rotations with angles c_k * theta_m.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError
from repro.operators.fermion import FermionOperator
from repro.operators.jordan_wigner import jordan_wigner
from repro.operators.pauli import PauliTerm
from repro.circuits.gates import Gate
from repro.circuits.circuit import Circuit
from repro.circuits.trotter import pauli_rotation_circuit


@dataclass
class Excitation:
    """One parametrized cluster term tau_m - tau_m+ in Pauli form."""

    label: str
    param_index: int
    #: (PauliTerm, real coefficient c) pairs: generator = sum_k i c_k P_k
    pauli_terms: list[tuple[PauliTerm, float]] = field(default_factory=list)


class UCCSDAnsatz:
    """UCCSD over ``n_spatial`` orbitals with ``n_electrons`` electrons.

    Spin orbitals are interleaved (2p = alpha_p, 2p+1 = beta_p); the
    reference occupies the first ``n_electrons`` qubits.

    Parameters
    ----------
    include_singles / include_doubles:
        Toggle excitation classes (the paper's ansatz uses both).
    """

    def __init__(self, n_spatial: int, n_electrons: int, *,
                 include_singles: bool = True, include_doubles: bool = True,
                 generalized: bool = False, mapping: str = "jordan_wigner"):
        if n_electrons % 2:
            raise ValidationError("closed-shell UCCSD needs even n_electrons")
        if n_electrons <= 0 or n_electrons >= 2 * n_spatial:
            raise ValidationError(
                f"n_electrons={n_electrons} incompatible with "
                f"{n_spatial} spatial orbitals"
            )
        if mapping not in ("jordan_wigner", "jw", "bravyi_kitaev", "bk"):
            raise ValidationError(f"unknown mapping {mapping!r}")
        self.n_spatial = n_spatial
        self.n_electrons = n_electrons
        self.n_qubits = 2 * n_spatial
        self.mapping = "bk" if mapping in ("bravyi_kitaev", "bk") else "jw"
        #: UCCGSD: excitations between *all* orbital pairs, not only
        #: occupied -> virtual (a more expressive, pricier ansatz)
        self.generalized = generalized
        n_occ = n_electrons // 2
        if generalized:
            occ = range(n_spatial)
            virt = range(n_spatial)
        else:
            occ = range(n_occ)
            virt = range(n_occ, n_spatial)

        self.excitations: list[Excitation] = []
        m = 0
        if include_singles:
            for i in occ:
                for a in virt:
                    if generalized and a <= i:
                        continue  # (i,a) and (a,i) give the same generator
                    tau = FermionOperator.zero()
                    for s in (0, 1):
                        tau = tau + FermionOperator.from_term(
                            [(2 * a + s, 1), (2 * i + s, 0)])
                    if self._add_excitation(f"s_{i}->{a}", m, tau):
                        m += 1
        if include_doubles:
            if generalized:
                pairs = [(i, a) for i in range(n_spatial)
                         for a in range(n_spatial) if a > i]
            else:
                pairs = [(i, a) for i in occ for a in virt]
            for x, (i, a) in enumerate(pairs):
                for (j, b) in pairs[x:]:
                    tau = FermionOperator.zero()
                    for s1 in (0, 1):
                        for s2 in (0, 1):
                            p, q = 2 * a + s1, 2 * b + s2
                            r, t = 2 * j + s2, 2 * i + s1
                            if p == q or r == t:
                                continue
                            tau = tau + FermionOperator.from_term(
                                [(p, 1), (q, 1), (r, 0), (t, 0)])
                    if not tau.terms:
                        continue
                    if self._add_excitation(f"d_{i}{j}->{a}{b}", m, tau):
                        m += 1
        self.n_parameters = m

    def _map(self, op: FermionOperator):
        if self.mapping == "bk":
            from repro.operators.bravyi_kitaev import bravyi_kitaev

            return bravyi_kitaev(op, n_qubits=self.n_qubits)
        return jordan_wigner(op)

    def _add_excitation(self, label: str, index: int,
                        tau: FermionOperator) -> bool:
        """Register the Pauli form of tau - tau+; False if it vanishes."""
        gen = (tau - tau.dagger()).normal_ordered()
        qop = self._map(gen)
        terms: list[tuple[PauliTerm, float]] = []
        for pt, coeff in qop:
            if abs(coeff.real) > 1e-12:
                raise ValidationError(
                    f"excitation {label}: generator is not anti-hermitian "
                    f"(real Pauli coefficient {coeff.real:g})"
                )
            if abs(coeff.imag) > 1e-12:
                terms.append((pt, float(coeff.imag)))
        if terms:
            self.excitations.append(Excitation(label, index, terms))
            return True
        return False

    # -- circuits ------------------------------------------------------------

    def _reference_qubits(self) -> list[int]:
        """Qubits flipped to prepare the HF determinant in the mapping."""
        if self.mapping == "jw":
            return list(range(self.n_electrons))
        from repro.operators.bravyi_kitaev import bk_encode_occupation

        occ = [1 if q < self.n_electrons else 0
               for q in range(self.n_qubits)]
        return [q for q, b in enumerate(bk_encode_occupation(occ)) if b]

    def reference_circuit(self, n_qubits: int | None = None) -> Circuit:
        """X gates preparing the Hartree-Fock reference determinant."""
        n = n_qubits or self.n_qubits
        c = Circuit(n_qubits=n, name="hf_reference")
        for q in self._reference_qubits():
            c.append(Gate("X", (q,)))
        return c

    def circuit(self, n_qubits: int | None = None) -> Circuit:
        """Full parametric ansatz circuit: reference + Trotterized exp(T-T+).

        ``n_qubits`` may exceed the logical width to leave room for a
        Hadamard-test ancilla.
        """
        n = n_qubits or self.n_qubits
        if n < self.n_qubits:
            raise ValidationError(
                f"register of {n} too small for {self.n_qubits} qubits"
            )
        c = Circuit(n_qubits=n, n_parameters=self.n_parameters, name="uccsd")
        for q in self._reference_qubits():
            c.append(Gate("X", (q,)))
        for exc in self.excitations:
            for pt, coeff in exc.pauli_terms:
                # exp(i (coeff * theta_m) P)
                c.extend(pauli_rotation_circuit(
                    pt, n, param=(exc.param_index, coeff)))
        return c

    def initial_parameters(self, kind: str = "zeros",
                           seed: int | None = None,
                           scale: float = 1e-2) -> np.ndarray:
        """Starting amplitudes: 'zeros' (HF start) or 'random' (break ties)."""
        if kind == "zeros":
            return np.zeros(self.n_parameters)
        if kind == "random":
            from repro.common.rng import default_rng
            return scale * default_rng(seed).standard_normal(self.n_parameters)
        raise ValidationError(f"unknown initial parameter kind {kind!r}")


def uccsd_circuit(n_spatial: int, n_electrons: int,
                  n_qubits: int | None = None) -> tuple[Circuit, UCCSDAnsatz]:
    """Convenience: build the ansatz and its circuit in one call."""
    ansatz = UCCSDAnsatz(n_spatial, n_electrons)
    return ansatz.circuit(n_qubits), ansatz
