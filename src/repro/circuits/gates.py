"""Gate definitions and matrices.

Gates are lightweight records; their unitaries are built on demand.  Two-qubit
matrices use the convention that the *first* listed qubit is the most
significant factor of the 4x4 kron ordering, i.e. basis order
|q_a q_b> = |00>, |01>, |10>, |11> with q_a = gate.qubits[0].
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.common.errors import ValidationError

_SQ2 = 1.0 / math.sqrt(2.0)

GATE_MATRICES: dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
    "H": np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex),
    "S": np.array([[1, 0], [0, 1j]], dtype=complex),
    "SDG": np.array([[1, 0], [0, -1j]], dtype=complex),
    "T": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "CX": np.array([[1, 0, 0, 0],
                    [0, 1, 0, 0],
                    [0, 0, 0, 1],
                    [0, 0, 1, 0]], dtype=complex),
    "CY": np.array([[1, 0, 0, 0],
                    [0, 1, 0, 0],
                    [0, 0, 0, -1j],
                    [0, 0, 1j, 0]], dtype=complex),
    "CZ": np.diag([1, 1, 1, -1]).astype(complex),
    "SWAP": np.array([[1, 0, 0, 0],
                      [0, 0, 1, 0],
                      [0, 1, 0, 0],
                      [0, 0, 0, 1]], dtype=complex),
}

_PARAMETRIC = {"RX", "RY", "RZ", "RZZ"}
_CUSTOM = {"U1", "U2"}


def _rotation_matrix(name: str, angle: float) -> np.ndarray:
    c, s = math.cos(angle / 2.0), math.sin(angle / 2.0)
    if name == "RX":
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if name == "RY":
        return np.array([[c, -s], [s, c]], dtype=complex)
    if name == "RZ":
        return np.array([[c - 1j * s, 0], [0, c + 1j * s]], dtype=complex)
    if name == "RZZ":  # exp(-i angle/2 Z (x) Z)
        e = np.exp(-0.5j * angle)
        return np.diag([e, e.conjugate(), e.conjugate(), e]).astype(complex)
    raise ValidationError(f"unknown rotation gate {name!r}")


@dataclass(frozen=True)
class Gate:
    """One gate application.

    Attributes
    ----------
    name:
        Gate mnemonic ("H", "CX", "RZ", "U2", ...).
    qubits:
        Target qubits (control first for controlled gates).
    angle:
        Rotation angle for parametric gates, either fixed at construction or
        filled in by :meth:`repro.circuits.circuit.Circuit.bind`.
    param:
        Optional ``(parameter_index, multiplier)``: the bound angle is
        ``multiplier * theta[parameter_index]``.  The multiplier carries the
        Pauli coefficient of the UCC term the rotation came from.
    unitary:
        Explicit matrix for custom gates ("U1": 2x2, "U2": 4x4).
    """

    name: str
    qubits: tuple[int, ...]
    angle: float | None = None
    param: tuple[int, float] | None = None
    unitary: np.ndarray | None = None

    def __post_init__(self) -> None:
        nm = self.name.upper()
        if nm != self.name:
            object.__setattr__(self, "name", nm)
        if nm in GATE_MATRICES:
            need = 1 if GATE_MATRICES[nm].shape[0] == 2 else 2
        elif nm in _PARAMETRIC:
            need = 2 if nm == "RZZ" else 1
        elif nm == "U1":
            need = 1
        elif nm == "U2":
            need = 2
        else:
            raise ValidationError(f"unknown gate {nm!r}")
        if len(self.qubits) != need:
            raise ValidationError(
                f"{nm} needs {need} qubit(s), got {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValidationError(f"duplicate qubits in {self.qubits}")
        if nm in _CUSTOM and self.unitary is None:
            raise ValidationError(f"{nm} requires an explicit unitary")

    @property
    def n_qubits(self) -> int:
        return len(self.qubits)

    def is_parametric(self) -> bool:
        return self.param is not None

    def bound(self, theta: np.ndarray) -> "Gate":
        """Resolve the angle from a parameter vector."""
        if self.param is None:
            return self
        idx, mult = self.param
        return replace(self, angle=float(mult * theta[idx]), param=None)

    def matrix(self) -> np.ndarray:
        """The gate unitary; parametric gates must be bound first."""
        if self.unitary is not None:
            return self.unitary
        if self.name in GATE_MATRICES:
            return GATE_MATRICES[self.name]
        if self.name in _PARAMETRIC:
            if self.angle is None:
                raise ValidationError(
                    f"unbound parametric gate {self.name} on {self.qubits}"
                )
            return _rotation_matrix(self.name, self.angle)
        raise ValidationError(f"no matrix for gate {self.name!r}")


def controlled_pauli_gate(control: int, target: int, pauli: str) -> Gate:
    """Controlled-X/Y/Z gate used by the Hadamard-test measurement circuits."""
    pauli = pauli.upper()
    if pauli not in ("X", "Y", "Z"):
        raise ValidationError(f"no controlled gate for Pauli {pauli!r}")
    return Gate(name=f"C{pauli}", qubits=(control, target))
