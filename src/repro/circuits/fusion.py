"""Gate fusion: absorb single-qubit gates into neighbouring two-qubit gates.

The paper (Sec. III-A) notes that explicit single-qubit gate application on
the MPS "is not necessary since single-qubit gates can be absorbed into
two-qubit gates using gate fusion".  This pass walks a *bound* circuit,
accumulates pending single-qubit unitaries per qubit, and folds them into the
next two-qubit gate touching that qubit; leftovers at the end of the circuit
are folded backwards into the last two-qubit gate, or emitted as U1 gates on
qubits no two-qubit gate ever touches.

Optionally, consecutive two-qubit gates acting on the same pair are merged.
The output circuit contains only U2 (and possibly U1) gates, which is the
densest form for the simulators.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.circuits.gates import Gate
from repro.circuits.circuit import Circuit

_ID2 = np.eye(2, dtype=complex)


def _expand_single(u: np.ndarray, position: int) -> np.ndarray:
    """Embed a 1q unitary into the 4x4 space of a 2q gate (position 0 = MSB)."""
    return np.kron(u, _ID2) if position == 0 else np.kron(_ID2, u)


def fuse_single_qubit_gates(circuit: Circuit, *,
                            merge_two_qubit_runs: bool = True) -> Circuit:
    """Return an equivalent circuit of fused U2 (+ residual U1) gates."""
    if not circuit.is_bound():
        raise ValidationError("fusion requires a bound circuit")

    pending: dict[int, np.ndarray] = {}
    fused: list[Gate] = []
    # last fused-gate index touching each qubit (for backward absorption)
    last_touch: dict[int, int] = {}

    for gate in circuit.gates:
        if gate.n_qubits == 1:
            u = gate.matrix()
            q = gate.qubits[0]
            pending[q] = u @ pending.get(q, _ID2)
            continue
        # two-qubit gate: fold pending unitaries of both qubits in front
        mat = gate.matrix().copy()
        for pos, q in enumerate(gate.qubits):
            if q in pending:
                mat = mat @ _expand_single(pending.pop(q), pos)
        if (merge_two_qubit_runs and fused
                and fused[-1].qubits == gate.qubits):
            mat = mat @ fused[-1].matrix()
            fused[-1] = Gate("U2", gate.qubits, unitary=mat)
        elif (merge_two_qubit_runs and fused
                and fused[-1].qubits == gate.qubits[::-1]):
            # same pair, swapped order: permute previous into this ordering
            prev = _permute_two_qubit(fused[-1].matrix())
            fused[-1] = Gate("U2", gate.qubits, unitary=mat @ prev)
        else:
            fused.append(Gate("U2", gate.qubits, unitary=mat))
        for q in gate.qubits:
            last_touch[q] = len(fused) - 1

    # flush leftovers
    residual: list[Gate] = []
    for q, u in pending.items():
        idx = last_touch.get(q)
        if idx is None:
            residual.append(Gate("U1", (q,), unitary=u))
            continue
        g = fused[idx]
        pos = g.qubits.index(q)
        fused[idx] = Gate("U2", g.qubits,
                          unitary=_expand_single(u, pos) @ g.matrix())
    out = Circuit(n_qubits=circuit.n_qubits, name=circuit.name + "+fused")
    out.extend(fused + residual)
    return out


def _permute_two_qubit(mat: np.ndarray) -> np.ndarray:
    """Reverse the qubit order of a 4x4 unitary (|ab> -> |ba> relabelling)."""
    perm = [0, 2, 1, 3]
    return mat[np.ix_(perm, perm)]
