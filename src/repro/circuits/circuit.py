"""Circuit intermediate representation.

A :class:`Circuit` is an ordered gate list over a fixed register plus a
parameter count.  Binding a parameter vector produces a new circuit with all
rotation angles resolved; transformation passes (fusion, routing) and the
simulators consume bound circuits.

The memory-accounting helpers back the Fig. 9 experiment (memory-efficient
circuit storage): a VQE over M Pauli strings needs M measurement circuits
that share one ansatz prefix, and storing the prefix once instead of M times
is the paper's ~20x memory saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.common.errors import ValidationError
from repro.circuits.gates import Gate

#: Reference to an optimizer parameter: (index, multiplier).
ParamRef = tuple[int, float]


@dataclass
class Circuit:
    """An ordered sequence of gates on ``n_qubits`` qubits."""

    n_qubits: int
    gates: list[Gate] = field(default_factory=list)
    n_parameters: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.n_qubits < 1:
            raise ValidationError("circuit needs at least one qubit")
        for g in self.gates:
            self._check_gate(g)

    def _check_gate(self, gate: Gate) -> None:
        if any(q >= self.n_qubits or q < 0 for q in gate.qubits):
            raise ValidationError(
                f"gate {gate.name} on {gate.qubits} outside register of "
                f"{self.n_qubits}"
            )
        if gate.param is not None and gate.param[0] >= self.n_parameters:
            raise ValidationError(
                f"gate references parameter {gate.param[0]} but circuit has "
                f"{self.n_parameters}"
            )

    # -- construction -------------------------------------------------------

    def append(self, gate: Gate) -> "Circuit":
        """Append a gate in place (returns self for chaining)."""
        self._check_gate(gate)
        self.gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for g in gates:
            self.append(g)
        return self

    def compose(self, other: "Circuit") -> "Circuit":
        """New circuit running ``self`` then ``other`` (registers must match).

        Parameter indices of ``other`` are preserved (shared parameter
        space), so composing an ansatz with a measurement circuit keeps the
        ansatz parameters addressable.
        """
        if other.n_qubits != self.n_qubits:
            raise ValidationError(
                f"register mismatch: {self.n_qubits} vs {other.n_qubits}"
            )
        return Circuit(
            n_qubits=self.n_qubits,
            gates=list(self.gates) + list(other.gates),
            n_parameters=max(self.n_parameters, other.n_parameters),
            name=self.name,
        )

    def bind(self, theta: np.ndarray) -> "Circuit":
        """Resolve all parametric gates against a parameter vector."""
        theta = np.asarray(theta, dtype=float)
        if theta.size < self.n_parameters:
            raise ValidationError(
                f"need {self.n_parameters} parameters, got {theta.size}"
            )
        return Circuit(
            n_qubits=self.n_qubits,
            gates=[g.bound(theta) for g in self.gates],
            n_parameters=0,
            name=self.name,
        )

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def is_bound(self) -> bool:
        return all(g.param is None and
                   (g.angle is not None or g.name not in
                    ("RX", "RY", "RZ", "RZZ"))
                   for g in self.gates)

    def count_gates(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for g in self.gates:
            out[g.name] = out.get(g.name, 0) + 1
        return out

    def n_two_qubit_gates(self) -> int:
        return sum(1 for g in self.gates if g.n_qubits == 2)

    def depth(self) -> int:
        """Circuit depth (longest chain of gates per qubit timeline)."""
        level = [0] * self.n_qubits
        for g in self.gates:
            start = max(level[q] for q in g.qubits)
            for q in g.qubits:
                level[q] = start + 1
        return max(level) if level else 0

    def memory_bytes(self) -> int:
        """Approximate storage footprint of this circuit description.

        Counts the gate records and any explicit unitaries; used by the
        Fig. 9 memory-reduction benchmark.
        """
        total = 0
        for g in self.gates:
            total += 64 + 8 * len(g.qubits)  # record overhead
            if g.unitary is not None:
                total += g.unitary.nbytes
        return total

    def parameter_indices(self) -> set[int]:
        return {g.param[0] for g in self.gates if g.param is not None}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Circuit({self.name or 'anon'}, n_qubits={self.n_qubits}, "
                f"gates={len(self.gates)}, params={self.n_parameters})")
