"""Quantum-circuit IR, ansatz builders and circuit-level transformations."""

from repro.circuits.gates import Gate, GATE_MATRICES, controlled_pauli_gate
from repro.circuits.circuit import Circuit, ParamRef
from repro.circuits.trotter import pauli_exponential, pauli_rotation_circuit
from repro.circuits.uccsd import UCCSDAnsatz, uccsd_circuit
from repro.circuits.hea import brick_ansatz, random_brick_circuit
from repro.circuits.fusion import fuse_single_qubit_gates
from repro.circuits.routing import route_to_nearest_neighbour

__all__ = [
    "Gate",
    "GATE_MATRICES",
    "controlled_pauli_gate",
    "Circuit",
    "ParamRef",
    "pauli_exponential",
    "pauli_rotation_circuit",
    "UCCSDAnsatz",
    "uccsd_circuit",
    "brick_ansatz",
    "random_brick_circuit",
    "fuse_single_qubit_gates",
    "route_to_nearest_neighbour",
]
