"""Compilation of Pauli-string exponentials into elementary gates.

exp(i phi P) for a Pauli string P compiles to the textbook CNOT-staircase
pattern: single-qubit basis changes bringing every factor to Z, a CNOT ladder
accumulating the joint parity on the last support qubit, RZ(-2 phi) there,
and the mirror image back.  This is the Suzuki-Trotter building block of the
UCCSD ansatz (Sec. II-A of the paper).

Because Jordan-Wigner strings have contiguous support, the ladders emitted
here consist of nearest-neighbour CNOTs only - which is what makes the
ansatz MPS-friendly.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.circuits.gates import Gate
from repro.circuits.circuit import Circuit
from repro.operators.pauli import PauliTerm


def pauli_rotation_circuit(term: PauliTerm, n_qubits: int, *,
                           angle: float | None = None,
                           param: tuple[int, float] | None = None) -> list[Gate]:
    """Gate list implementing exp(i phi P).

    Exactly one of ``angle`` (fixed phi) or ``param`` ((index, multiplier)
    with phi = multiplier * theta[index]) must be given.  The RZ convention
    RZ(a) = exp(-i a Z / 2) means the central rotation is RZ(-2 phi).
    """
    if (angle is None) == (param is None):
        raise ValidationError("give exactly one of angle/param")
    ops = term.ops()
    if not ops:
        # exp(i phi I) is a global phase; nothing to emit
        return []
    if any(q >= n_qubits for q, _ in ops):
        raise ValidationError("Pauli support outside register")

    pre: list[Gate] = []
    post: list[Gate] = []
    for q, ch in ops:
        if ch == "X":
            pre.append(Gate("H", (q,)))
            post.append(Gate("H", (q,)))
        elif ch == "Y":
            # RX(pi/2) maps Y -> Z; RX(-pi/2) undoes it
            pre.append(Gate("RX", (q,), angle=0.5 * 3.141592653589793))
            post.append(Gate("RX", (q,), angle=-0.5 * 3.141592653589793))
        # Z needs no change of basis

    qubits = [q for q, _ in ops]
    ladder: list[Gate] = []
    for a, b in zip(qubits[:-1], qubits[1:]):
        ladder.append(Gate("CX", (a, b)))

    if param is not None:
        idx, mult = param
        rz = Gate("RZ", (qubits[-1],), param=(idx, -2.0 * mult))
    else:
        rz = Gate("RZ", (qubits[-1],), angle=-2.0 * angle)

    return pre + ladder + [rz] + list(reversed(ladder)) + list(reversed(post))


def pauli_exponential(term: PauliTerm, n_qubits: int, angle: float) -> Circuit:
    """Standalone circuit for exp(i angle P)."""
    c = Circuit(n_qubits=n_qubits)
    c.extend(pauli_rotation_circuit(term, n_qubits, angle=angle))
    return c
