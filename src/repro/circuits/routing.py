"""SWAP routing onto a linear (MPS-friendly) topology.

The UCCSD staircases emitted by :mod:`repro.circuits.trotter` are already
nearest-neighbour, but the Hadamard-test measurement circuits couple an
ancilla to arbitrary qubits.  This pass rewrites any circuit so every
two-qubit gate acts on adjacent qubits, by swapping the first operand next to
the second and back.  All simulators accept the routed circuit unchanged,
which keeps cross-simulator comparisons (Fig. 8) apples-to-apples.
"""

from __future__ import annotations

from repro.circuits.gates import Gate
from repro.circuits.circuit import Circuit


def route_to_nearest_neighbour(circuit: Circuit) -> Circuit:
    """Equivalent circuit whose two-qubit gates are all on adjacent qubits."""
    out = Circuit(n_qubits=circuit.n_qubits,
                  n_parameters=circuit.n_parameters,
                  name=circuit.name + "+routed")
    for gate in circuit.gates:
        if gate.n_qubits != 2:
            out.append(gate)
            continue
        a, b = gate.qubits
        if abs(a - b) == 1:
            out.append(gate)
            continue
        # move a next to b with a swap chain, apply, undo
        step = 1 if b > a else -1
        chain = []
        pos = a
        while abs(pos - b) > 1:
            chain.append((pos, pos + step))
            pos += step
        for (x, y) in chain:
            out.append(Gate("SWAP", (min(x, y), max(x, y))))
        moved = Gate(gate.name, (pos, b), angle=gate.angle,
                     param=gate.param, unitary=gate.unitary)
        out.append(moved)
        for (x, y) in reversed(chain):
            out.append(Gate("SWAP", (min(x, y), max(x, y))))
    return out
