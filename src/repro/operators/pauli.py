"""Pauli-string algebra in symplectic representation.

A Pauli string is stored as a pair of bitmasks ``(x, z)``: qubit ``j`` carries
X if bit ``j`` of ``x`` is set, Z if bit ``j`` of ``z`` is set, Y if both
(with the canonical phase convention Y = i X Z).  The product of two strings
is then two XORs plus a phase determined by popcounts - no per-qubit loops.

:class:`QubitOperator` is a complex linear combination of Pauli strings; this
is the form of the electronic Hamiltonian the VQE evaluates term by term
(Eq. 2 of the paper), with each term measured by its own circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.common.bits import popcount as _popcount
from repro.common.errors import ValidationError

_PAULI_CHARS = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_CHAR_FROM_BITS = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@dataclass(frozen=True)
class PauliTerm:
    """A single Pauli string (no coefficient) in symplectic form."""

    x: int
    z: int

    @classmethod
    def from_label(cls, label: str) -> "PauliTerm":
        """Parse e.g. ``"XIZY"`` - leftmost char acts on qubit 0."""
        x = z = 0
        for j, ch in enumerate(label.upper()):
            if ch not in _PAULI_CHARS:
                raise ValidationError(f"bad Pauli character {ch!r} in {label!r}")
            bx, bz = _PAULI_CHARS[ch]
            x |= bx << j
            z |= bz << j
        return cls(x, z)

    @classmethod
    def from_ops(cls, ops: Iterable[tuple[int, str]]) -> "PauliTerm":
        """Build from sparse ``(qubit, 'X'|'Y'|'Z')`` pairs."""
        x = z = 0
        for q, ch in ops:
            if q < 0:
                raise ValidationError(f"negative qubit index {q}")
            bx, bz = _PAULI_CHARS[ch.upper()]
            if (x >> q) & 1 or (z >> q) & 1:
                raise ValidationError(f"duplicate operator on qubit {q}")
            x |= bx << q
            z |= bz << q
        return cls(x, z)

    def label(self, n_qubits: int) -> str:
        """Dense label over ``n_qubits`` qubits, qubit 0 first."""
        return "".join(
            _CHAR_FROM_BITS[((self.x >> j) & 1, (self.z >> j) & 1)]
            for j in range(n_qubits)
        )

    def ops(self) -> list[tuple[int, str]]:
        """Sparse ``(qubit, char)`` list of the non-identity factors."""
        out = []
        mask = self.x | self.z
        j = 0
        m = mask
        while m:
            if m & 1:
                out.append((j, _CHAR_FROM_BITS[((self.x >> j) & 1,
                                                (self.z >> j) & 1)]))
            m >>= 1
            j += 1
        return out

    @property
    def support(self) -> int:
        """Bitmask of qubits acted on non-trivially."""
        return self.x | self.z

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return _popcount(self.x | self.z)

    def is_identity(self) -> bool:
        return self.x == 0 and self.z == 0

    def commutes_with(self, other: "PauliTerm") -> bool:
        """True iff the two strings commute (symplectic inner product even)."""
        return (_popcount(self.x & other.z) - _popcount(self.z & other.x)) % 2 == 0

    def multiply(self, other: "PauliTerm") -> tuple[complex, "PauliTerm"]:
        """Product ``self * other`` -> (phase, term).

        With the canonical convention Y = iXZ the phase exponent is
        c1 + c2 - c12 + 2*popcount(z1 & x2) (mod 4) where c = popcount(x&z).
        """
        x12 = self.x ^ other.x
        z12 = self.z ^ other.z
        e = (_popcount(self.x & self.z) + _popcount(other.x & other.z)
             - _popcount(x12 & z12) + 2 * _popcount(self.z & other.x)) % 4
        return (1j ** e, PauliTerm(x12, z12))

    def matrix(self, n_qubits: int) -> np.ndarray:
        """Dense matrix over ``n_qubits`` qubits (qubit 0 = most significant
        factor in the Kronecker chain, matching the statevector simulator)."""
        out = np.array([[1.0 + 0j]])
        for j in range(n_qubits):
            ch = _CHAR_FROM_BITS[((self.x >> j) & 1, (self.z >> j) & 1)]
            out = np.kron(out, _PAULI_MATRICES[ch])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = self.ops()
        if not ops:
            return "I"
        return " ".join(f"{c}{q}" for q, c in ops)


def pauli_string(spec: str | Iterable[tuple[int, str]]) -> PauliTerm:
    """Convenience constructor: dense label or sparse op list."""
    if isinstance(spec, str):
        return PauliTerm.from_label(spec)
    return PauliTerm.from_ops(spec)


class QubitOperator:
    """Complex linear combination of Pauli strings.

    Supports +, -, *, scalar multiplication, hermitian conjugation and dense
    matrix embedding.  Terms with |coefficient| below ``tolerance`` are
    dropped during simplification.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: dict[PauliTerm, complex] | None = None):
        self.terms: dict[PauliTerm, complex] = dict(terms) if terms else {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def identity(cls, coeff: complex = 1.0) -> "QubitOperator":
        return cls({PauliTerm(0, 0): coeff})

    @classmethod
    def zero(cls) -> "QubitOperator":
        return cls({})

    @classmethod
    def from_term(cls, term: PauliTerm | str, coeff: complex = 1.0) -> "QubitOperator":
        if isinstance(term, str):
            term = PauliTerm.from_label(term)
        return cls({term: coeff})

    # -- algebra ---------------------------------------------------------------

    def __add__(self, other: "QubitOperator | complex") -> "QubitOperator":
        if not isinstance(other, QubitOperator):
            other = QubitOperator.identity(other)
        out = dict(self.terms)
        for t, c in other.terms.items():
            out[t] = out.get(t, 0.0) + c
        return QubitOperator(out)

    __radd__ = __add__

    def __sub__(self, other: "QubitOperator | complex") -> "QubitOperator":
        if not isinstance(other, QubitOperator):
            other = QubitOperator.identity(other)
        return self + (other * -1.0)

    def __rsub__(self, other: complex) -> "QubitOperator":
        return QubitOperator.identity(other) - self

    def __mul__(self, other: "QubitOperator | complex") -> "QubitOperator":
        if not isinstance(other, QubitOperator):
            return QubitOperator({t: c * other for t, c in self.terms.items()})
        out: dict[PauliTerm, complex] = {}
        for t1, c1 in self.terms.items():
            for t2, c2 in other.terms.items():
                phase, t12 = t1.multiply(t2)
                out[t12] = out.get(t12, 0.0) + phase * c1 * c2
        return QubitOperator(out)

    def __rmul__(self, other: complex) -> "QubitOperator":
        return self * other

    def __neg__(self) -> "QubitOperator":
        return self * -1.0

    def dagger(self) -> "QubitOperator":
        """Hermitian conjugate (Pauli strings are hermitian: conj coeffs)."""
        return QubitOperator({t: c.conjugate() if isinstance(c, complex) else c
                              for t, c in self.terms.items()})

    def simplify(self, tolerance: float = 1e-12) -> "QubitOperator":
        """Drop negligible terms (returns a new operator)."""
        return QubitOperator({t: c for t, c in self.terms.items()
                              if abs(c) > tolerance})

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[tuple[PauliTerm, complex]]:
        return iter(self.terms.items())

    def n_qubits(self) -> int:
        """Smallest register size containing every term's support."""
        n = 0
        for t in self.terms:
            if t.support:
                n = max(n, t.support.bit_length())
        return n

    def constant(self) -> complex:
        """Coefficient of the identity term."""
        return self.terms.get(PauliTerm(0, 0), 0.0)

    def is_hermitian(self, tolerance: float = 1e-10) -> bool:
        return all(abs(c.imag) < tolerance for c in self.terms.values())

    def norm(self) -> float:
        """Sum of absolute coefficients (induced 1-norm)."""
        return float(sum(abs(c) for c in self.terms.values()))

    def matrix(self, n_qubits: int | None = None) -> np.ndarray:
        """Dense matrix (test-sized registers only)."""
        n = n_qubits if n_qubits is not None else self.n_qubits()
        if n > 14:
            raise ValidationError(f"refusing dense matrix for {n} qubits")
        dim = 2 ** n
        out = np.zeros((dim, dim), dtype=complex)
        for t, c in self.terms.items():
            out += c * t.matrix(n)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.terms:
            return "0"
        parts = []
        for t, c in list(self.terms.items())[:8]:
            parts.append(f"({c:+.4g}) {t!r}")
        more = "" if len(self.terms) <= 8 else f" ... ({len(self.terms)} terms)"
        return " + ".join(parts) + more
