"""Second-quantized fermionic operators.

A :class:`FermionOperator` is a linear combination of products of creation
(``(p, 1)``) and annihilation (``(p, 0)``) operators.  Normal ordering applies
the canonical anticommutation relations {a_p, a+_q} = delta_pq.  This is the
intermediate representation between molecular integrals and qubit operators.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import ValidationError

#: A single ladder operator: (spin-orbital index, is_creation)
LadderOp = tuple[int, int]
#: A product of ladder operators.
Term = tuple[LadderOp, ...]


class FermionOperator:
    """Linear combination of ladder-operator products.

    Examples
    --------
    >>> op = FermionOperator.from_term([(0, 1), (1, 0)], 2.0)   # 2 a+_0 a_1
    >>> (op + op.dagger()).is_hermitian()
    True
    """

    __slots__ = ("terms",)

    def __init__(self, terms: dict[Term, complex] | None = None):
        self.terms: dict[Term, complex] = dict(terms) if terms else {}

    # -- constructors -----------------------------------------------------------

    @classmethod
    def zero(cls) -> "FermionOperator":
        return cls({})

    @classmethod
    def identity(cls, coeff: complex = 1.0) -> "FermionOperator":
        return cls({(): coeff})

    @classmethod
    def from_term(cls, ops: list[LadderOp] | Term,
                  coeff: complex = 1.0) -> "FermionOperator":
        term = tuple((int(p), int(d)) for p, d in ops)
        for p, d in term:
            if p < 0 or d not in (0, 1):
                raise ValidationError(f"bad ladder operator ({p}, {d})")
        return cls({term: coeff})

    # -- algebra ------------------------------------------------------------------

    def __add__(self, other: "FermionOperator | complex") -> "FermionOperator":
        if not isinstance(other, FermionOperator):
            other = FermionOperator.identity(other)
        out = dict(self.terms)
        for t, c in other.terms.items():
            out[t] = out.get(t, 0.0) + c
        return FermionOperator(out)

    __radd__ = __add__

    def __sub__(self, other: "FermionOperator | complex") -> "FermionOperator":
        if not isinstance(other, FermionOperator):
            other = FermionOperator.identity(other)
        return self + (other * -1.0)

    def __mul__(self, other: "FermionOperator | complex") -> "FermionOperator":
        if not isinstance(other, FermionOperator):
            return FermionOperator({t: c * other for t, c in self.terms.items()})
        out: dict[Term, complex] = {}
        for t1, c1 in self.terms.items():
            for t2, c2 in other.terms.items():
                t12 = t1 + t2
                out[t12] = out.get(t12, 0.0) + c1 * c2
        return FermionOperator(out)

    def __rmul__(self, other: complex) -> "FermionOperator":
        return self * other

    def __neg__(self) -> "FermionOperator":
        return self * -1.0

    def dagger(self) -> "FermionOperator":
        """Hermitian conjugate: reverse each product, flip dagger flags."""
        out: dict[Term, complex] = {}
        for t, c in self.terms.items():
            rt = tuple((p, 1 - d) for p, d in reversed(t))
            out[rt] = out.get(rt, 0.0) + c.conjugate()
        return FermionOperator(out)

    # -- normal ordering ------------------------------------------------------------

    def normal_ordered(self, tolerance: float = 1e-12) -> "FermionOperator":
        """Rewrite with creations left of annihilations, indices descending.

        Uses {a_p, a+_q} = delta_pq recursively; identical adjacent ladder
        operators annihilate the term.
        """
        out = FermionOperator.zero()
        for term, coeff in self.terms.items():
            out = out + _normal_order_term(list(term), coeff)
        return out.simplify(tolerance)

    def simplify(self, tolerance: float = 1e-12) -> "FermionOperator":
        return FermionOperator({t: c for t, c in self.terms.items()
                                if abs(c) > tolerance})

    # -- queries ----------------------------------------------------------------------

    def is_hermitian(self, tolerance: float = 1e-10) -> bool:
        diff = (self - self.dagger()).normal_ordered()
        return all(abs(c) < tolerance for c in diff.terms.values())

    def n_spin_orbitals(self) -> int:
        n = 0
        for t in self.terms:
            for p, _ in t:
                n = max(n, p + 1)
        return n

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[tuple[Term, complex]]:
        return iter(self.terms.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.terms:
            return "0"
        parts = []
        for t, c in list(self.terms.items())[:6]:
            ops = " ".join(f"a{'+' if d else ''}_{p}" for p, d in t) or "1"
            parts.append(f"({c:+.4g}) {ops}")
        more = "" if len(self.terms) <= 6 else f" ... ({len(self.terms)} terms)"
        return " + ".join(parts) + more


def _normal_order_term(ops: list[LadderOp], coeff: complex) -> FermionOperator:
    """Bubble a single product into normal order, branching on contractions."""
    out: dict[Term, complex] = {}
    stack = [(ops, coeff)]
    while stack:
        term, c = stack.pop()
        swapped = True
        while swapped:
            swapped = False
            for i in range(len(term) - 1):
                (p1, d1), (p2, d2) = term[i], term[i + 1]
                if d1 == 0 and d2 == 1:
                    # a_p a+_q = delta_pq - a+_q a_p
                    rest = term[:i] + term[i + 2:]
                    if p1 == p2:
                        stack.append((rest, c))
                    term = term[:i] + [(p2, d2), (p1, d1)] + term[i + 2:]
                    c = -c
                    swapped = True
                    break
                if d1 == d2:
                    if p1 == p2:
                        # a+a+ or aa with equal index -> 0
                        c = 0.0
                        swapped = False
                        term = []
                        break
                    # sort descending within a like-type block (canonical form)
                    if (d1 == 1 and p1 < p2) or (d1 == 0 and p1 < p2):
                        term = term[:i] + [(p2, d2), (p1, d1)] + term[i + 2:]
                        c = -c
                        swapped = True
                        break
            if not term and c == 0.0:
                break
        if c != 0.0:
            key = tuple(term)
            out[key] = out.get(key, 0.0) + c
    return FermionOperator(out)
