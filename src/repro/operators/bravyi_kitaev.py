"""Bravyi-Kitaev transformation via the Fenwick-tree construction.

Following Seeley, Richard & Love (J. Chem. Phys. 137, 224109, 2012): qubit j
stores partial occupation sums arranged in a Fenwick (binary-indexed) tree.
Each ladder operator maps to Pauli strings over three index sets:

* U(j) - update set: qubits above j whose stored sums include orbital j;
* P(j) - parity set: qubits encoding the occupation parity of orbitals < j;
* R(j) - remainder set: P(j) minus the flip set F(j) (qubits whose value
  equals the orbital occupations j directly depends on).

    a+_j = 1/2 X_{U(j)} X_j Z_{P(j)} - i/2 X_{U(j)} Y_j Z_{R(j)}
    a_j  = 1/2 X_{U(j)} X_j Z_{P(j)} + i/2 X_{U(j)} Y_j Z_{R(j)}

The BK mapping yields O(log n)-weight strings instead of JW's O(n); the
test-suite checks both transforms produce identical Hamiltonian spectra.
"""

from __future__ import annotations

from functools import lru_cache

from repro.operators.fermion import FermionOperator
from repro.operators.pauli import PauliTerm, QubitOperator


def _fenwick_parent(j: int, n: int) -> int | None:
    """Index of the Fenwick-tree parent of node j in a tree over n nodes."""
    # standard BIT update chain: j -> j | (j + 1)
    p = j | (j + 1)
    return p if p < n else None


@lru_cache(maxsize=512)
def _update_set(j: int, n: int) -> int:
    """Bitmask of U(j): the BIT update chain above j."""
    mask = 0
    p = _fenwick_parent(j, n)
    while p is not None:
        mask |= 1 << p
        p = _fenwick_parent(p, n)
    return mask


@lru_cache(maxsize=512)
def _flip_set(j: int) -> int:
    """Bitmask of F(j): children of j in the Fenwick tree.

    For the BIT layout, node j (with j odd or covering a block) sums orbitals
    (j - 2^r + 1 .. j); its children are j - 2^s for the block subdivisions.
    """
    mask = 0
    k = (j + 1) & -(j + 1)  # block size of node j
    s = 1
    while s < k:
        mask |= 1 << (j - s)
        s <<= 1
    return mask


@lru_cache(maxsize=512)
def _parity_set(j: int) -> int:
    """Bitmask of P(j): BIT prefix-query chain for sum of orbitals 0..j-1."""
    mask = 0
    i = j  # query prefix [0, j)
    while i > 0:
        mask |= 1 << (i - 1)
        i &= i - 1
    return mask


@lru_cache(maxsize=4096)
def _ladder_qubit_operator(j: int, dagger: int, n: int) -> QubitOperator:
    u = _update_set(j, n)
    p = _parity_set(j)
    r = p & ~_flip_set(j)
    # X_{U} X_j Z_{P} term
    t1 = PauliTerm(x=u | (1 << j), z=p)
    # X_{U} Y_j Z_{R} term
    t2 = PauliTerm(x=u | (1 << j), z=r | (1 << j))
    sign = -0.5j if dagger else 0.5j
    return QubitOperator({t1: 0.5, t2: sign})


def bk_encode_occupation(occupations: list[int]) -> list[int]:
    """BK qubit values for an occupation-number vector.

    Qubit j of the Bravyi-Kitaev register stores the parity of the orbitals
    in its Fenwick subtree: value[j] = n_j XOR (subtree parities of its
    children).  Used to prepare reference determinants (e.g. Hartree-Fock)
    in the BK encoding.
    """
    n = len(occupations)
    memo: dict[int, int] = {}

    def subtree_parity(j: int) -> int:
        if j in memo:
            return memo[j]
        val = occupations[j] & 1
        mask = _flip_set(j)
        c = 0
        while mask:
            if mask & 1:
                val ^= subtree_parity(c)
            mask >>= 1
            c += 1
        memo[j] = val
        return val

    return [subtree_parity(j) for j in range(n)]


def bravyi_kitaev(op: FermionOperator, n_qubits: int | None = None,
                  tolerance: float = 1e-12) -> QubitOperator:
    """Transform a :class:`FermionOperator` under the BK encoding."""
    n = n_qubits if n_qubits is not None else op.n_spin_orbitals()
    out = QubitOperator.zero()
    for term, coeff in op.terms.items():
        q = QubitOperator.identity(coeff)
        for p, d in term:
            q = q * _ladder_qubit_operator(p, d, n)
        out = out + q
    return out.simplify(tolerance)
