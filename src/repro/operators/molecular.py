"""Molecular Hamiltonians: integrals -> fermion operator -> qubit operator.

Implements Eq. (1) of the paper in the interleaved spin-orbital convention
(spin orbital 2p = alpha of spatial p, 2p+1 = beta) and maps it to the
weighted-Pauli-string form of Eq. (2) with Jordan-Wigner or Bravyi-Kitaev.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.chem.mo import MOIntegrals, spatial_to_spin_orbital
from repro.operators.fermion import FermionOperator
from repro.operators.pauli import QubitOperator
from repro.operators.jordan_wigner import jordan_wigner
from repro.operators.bravyi_kitaev import bravyi_kitaev


def molecular_fermion_operator(mo: MOIntegrals,
                               tolerance: float = 1e-12) -> FermionOperator:
    """Second-quantized Hamiltonian from spatial MO integrals.

    H = const + sum_pq h_pq a+_p a_q
             + 1/2 sum_pqrs (pq|rs) a+_p(sig) a+_r(tau) a_s(tau) a_q(sig)
    """
    h1, h2, const = spatial_to_spin_orbital(mo)
    n = h1.shape[0]
    terms: dict = {}
    if abs(const) > tolerance:
        terms[()] = const
    for p in range(n):
        for q in range(n):
            c = h1[p, q]
            if abs(c) > tolerance:
                terms[((p, 1), (q, 0))] = terms.get(((p, 1), (q, 0)), 0.0) + c
    for p in range(n):
        for q in range(n):
            for r in range(n):
                for s in range(n):
                    c = h2[p, q, r, s]
                    if abs(c) <= tolerance:
                        continue
                    key = ((p, 1), (r, 1), (s, 0), (q, 0))
                    terms[key] = terms.get(key, 0.0) + 0.5 * c
    return FermionOperator(terms)


def molecular_qubit_hamiltonian(mo: MOIntegrals, mapping: str = "jordan_wigner",
                                tolerance: float = 1e-10) -> QubitOperator:
    """Qubit Hamiltonian of an active space under the chosen encoding.

    The paper notes the Pauli-string count scales as O(N_q^4) - e.g. 15
    strings for H2/STO-3G (Fig. 5), 330816 for benzene at 72 qubits.
    """
    fop = molecular_fermion_operator(mo)
    if mapping in ("jordan_wigner", "jw"):
        return jordan_wigner(fop, tolerance)
    if mapping in ("bravyi_kitaev", "bk"):
        return bravyi_kitaev(fop, n_qubits=mo.n_qubits, tolerance=tolerance)
    raise ValidationError(f"unknown mapping {mapping!r}")


def qubit_hamiltonian_matrix(h: QubitOperator,
                             n_qubits: int | None = None) -> np.ndarray:
    """Dense matrix of a qubit Hamiltonian (small registers; for tests)."""
    return h.matrix(n_qubits)
