"""Jordan-Wigner transformation.

Maps ladder operators on spin orbital p to Pauli strings:

    a+_p = 1/2 (X_p - i Y_p) Z_0 ... Z_{p-1}
    a_p  = 1/2 (X_p + i Y_p) Z_0 ... Z_{p-1}

The Z chain fills the qubits below p, so operators with contiguous orbital
support map to Pauli strings with contiguous qubit support - the property
that makes the UCCSD circuits of the paper nearest-neighbour friendly for
the MPS simulator.
"""

from __future__ import annotations

from functools import lru_cache

from repro.operators.fermion import FermionOperator
from repro.operators.pauli import PauliTerm, QubitOperator


@lru_cache(maxsize=4096)
def _ladder_qubit_operator(p: int, dagger: int) -> QubitOperator:
    z_chain = (1 << p) - 1  # Z on qubits 0..p-1
    x_term = PauliTerm(x=1 << p, z=z_chain)
    y_term = PauliTerm(x=1 << p, z=z_chain | (1 << p))
    sign = -1.0j if dagger else 1.0j
    return QubitOperator({x_term: 0.5, y_term: 0.5 * sign})


def jordan_wigner(op: FermionOperator, tolerance: float = 1e-12) -> QubitOperator:
    """Transform a :class:`FermionOperator` into a :class:`QubitOperator`."""
    out = QubitOperator.zero()
    for term, coeff in op.terms.items():
        q = QubitOperator.identity(coeff)
        for p, d in term:
            q = q * _ladder_qubit_operator(p, d)
        out = out + q
    return out.simplify(tolerance)
