"""Total-spin observables over interleaved spin orbitals.

S_z and S^2 as qubit operators, used to verify that VQE/DMRG wavefunctions
sit in the intended spin sector (closed-shell ground states must be
singlets: <S^2> = 0) - a physics check on top of the energy comparisons.
"""

from __future__ import annotations

from repro.operators.fermion import FermionOperator
from repro.operators.jordan_wigner import jordan_wigner
from repro.operators.pauli import QubitOperator


def sz_operator(n_spatial: int) -> QubitOperator:
    """S_z = 1/2 sum_p (n_p-alpha - n_p-beta)."""
    op = FermionOperator.zero()
    for p in range(n_spatial):
        op = op + FermionOperator.from_term([(2 * p, 1), (2 * p, 0)], 0.5)
        op = op - FermionOperator.from_term([(2 * p + 1, 1),
                                             (2 * p + 1, 0)], 0.5)
    return jordan_wigner(op)


def s_plus_operator(n_spatial: int) -> FermionOperator:
    """S_+ = sum_p a+_{p alpha} a_{p beta} (fermionic form)."""
    op = FermionOperator.zero()
    for p in range(n_spatial):
        op = op + FermionOperator.from_term([(2 * p, 1), (2 * p + 1, 0)])
    return op


def s2_operator(n_spatial: int) -> QubitOperator:
    """S^2 = S_- S_+ + S_z (S_z + 1) as a qubit operator."""
    sp = s_plus_operator(n_spatial)
    sm = sp.dagger()
    sz = FermionOperator.zero()
    for p in range(n_spatial):
        sz = sz + FermionOperator.from_term([(2 * p, 1), (2 * p, 0)], 0.5)
        sz = sz - FermionOperator.from_term([(2 * p + 1, 1),
                                             (2 * p + 1, 0)], 0.5)
    s2 = (sm * sp + sz * sz + sz).normal_ordered()
    return jordan_wigner(s2)


def number_operator(n_spin_orbitals: int) -> QubitOperator:
    """Total particle number N_hat as a qubit operator."""
    op = FermionOperator.zero()
    for p in range(n_spin_orbitals):
        op = op + FermionOperator.from_term([(p, 1), (p, 0)])
    return jordan_wigner(op)
