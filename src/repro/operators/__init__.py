"""Fermion/qubit operator algebra (the role OpenFermion plays in the paper).

Pauli strings use a symplectic (x_mask, z_mask) bitmask representation so
products, commutation checks and matrix embeddings are O(1) bit operations
regardless of qubit count.
"""

from repro.operators.pauli import PauliTerm, QubitOperator, pauli_string
from repro.operators.fermion import FermionOperator
from repro.operators.jordan_wigner import jordan_wigner
from repro.operators.bravyi_kitaev import bravyi_kitaev
from repro.operators.molecular import (
    molecular_fermion_operator,
    molecular_qubit_hamiltonian,
    qubit_hamiltonian_matrix,
)

__all__ = [
    "PauliTerm",
    "QubitOperator",
    "pauli_string",
    "FermionOperator",
    "jordan_wigner",
    "bravyi_kitaev",
    "molecular_fermion_operator",
    "molecular_qubit_hamiltonian",
    "qubit_hamiltonian_matrix",
]
