"""Reduced density matrices measured on a simulated quantum state.

DMET's self-consistency loop needs the fragment's spin-summed 1-RDM (for the
electron count) and 2-RDM (for the democratic-partitioning energy) from the
VQE solution - step 4 of the paper's Sec. III-B procedure.  Both are obtained
the same way the energy is: as expectation values of Jordan-Wigner-mapped
operators on the final ansatz state.
"""

from __future__ import annotations

import numpy as np

from repro.operators.fermion import FermionOperator
from repro.operators.jordan_wigner import jordan_wigner
from repro.operators.pauli import QubitOperator


def _spin_summed_excitation(p: int, q: int) -> FermionOperator:
    """E_pq = sum_sigma a+_{p sigma} a_{q sigma} (interleaved spin orbitals)."""
    op = FermionOperator.zero()
    for s in (0, 1):
        op = op + FermionOperator.from_term([(2 * p + s, 1), (2 * q + s, 0)])
    return op


def excitation_qubit_operators(n_spatial: int) -> dict[tuple[int, int],
                                                       QubitOperator]:
    """JW images of every spin-summed E_pq (cached by callers)."""
    return {
        (p, q): jordan_wigner(_spin_summed_excitation(p, q))
        for p in range(n_spatial) for q in range(n_spatial)
    }


def measure_rdms(sim, n_spatial: int,
                 e_ops: dict[tuple[int, int], QubitOperator] | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Spin-summed (gamma_pq, Gamma_pqrs) from a simulator state.

    ``sim`` is any simulator exposing ``expectation(QubitOperator)``.
    Chemists' pairing convention: Gamma_pqrs = <E_pq E_rs> - delta_qr <E_ps>,
    so that E = const + sum h gamma + 1/2 sum (pq|rs) Gamma.
    """
    if e_ops is None:
        e_ops = excitation_qubit_operators(n_spatial)
    m = n_spatial
    gamma = np.zeros((m, m))
    for p in range(m):
        for q in range(p, m):
            val = sim.expectation(e_ops[(p, q)])
            gamma[p, q] = val
            gamma[q, p] = val  # real wavefunctions: gamma is symmetric
    g2 = np.zeros((m, m, m, m))
    for p in range(m):
        for q in range(m):
            for r in range(m):
                for s in range(m):
                    if (p, q, r, s) > (r, s, p, q):
                        continue  # Gamma_pqrs = Gamma_rspq
                    prod = e_ops[(p, q)] * e_ops[(r, s)]
                    val = sim.expectation(prod)
                    if q == r:
                        val -= gamma[p, s]
                    g2[p, q, r, s] = val
                    g2[r, s, p, q] = val
    return gamma, g2
