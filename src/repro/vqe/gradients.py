"""Gradient sources for VQE: adjoint reverse-mode, parameter-shift, FD.

Every optimizer step needs dE/dtheta for E(theta) = <0|U(theta)' H U(theta)|0>.
Three sources compute it, forming an oracle hierarchy (each validates the
one above it, and the property suite pins their pairwise agreement):

* ``adjoint`` - reverse-mode analytic gradients from **one forward + one
  backward pass** (the differentiable-MPS strategy of arXiv:2211.07983).
  For a parametric gate ``U_k = exp(-i a/2 G_k)`` with bound angle
  ``a = mult * theta[idx]``,

      dE/da = Im <phi_k | G_k | ket_k>,

  where ``ket_k = U_k ... U_1 |0>`` and ``phi_k = U_{k+1}' ... U_N' H U|0>``.
  The forward pass prepares ``|psi> = U|0>`` once; ``H|psi>`` is built once
  (densely on statevector, as a zip-up MPO application on MPS); the backward
  sweep then *undoes* each gate on both states and accumulates one overlap
  per parametric gate - O(1) state memory, all P partials from a single
  backward sweep instead of 2P (finite differences) or 2G (parameter shift,
  G = parametric gate count) energy evaluations.  On MPS the overlaps reuse
  the measurement engine's environment-advance kernels
  (:func:`repro.simulators.mps_measure._advance_left` /
  ``_advance_right``) with prefix/suffix environment caches that are
  invalidated only over the support of each undone gate.  Exact at
  unbounded bond dimension; at truncated D the error is bounded by the
  discarded Schmidt weight (the same budget the energy obeys).
* ``param_shift`` - the gate-wise analytic oracle: every parametric gate's
  *bound angle* is shifted by +-pi/2 (``dE/da = (E(a+pi/2) - E(a-pi/2))/2``,
  exact for involutory generators) and chain-ruled through the multiplier.
  Gate-wise shifting matters because UCCSD shares one theta across many
  rotations with different multipliers - the naive per-parameter 2-point
  shift is *not* exact there.  Costs 2G energy evaluations.
* ``finite_diff`` - central differences per parameter (2P evaluations);
  works with any energy callable, including the circuit-free "fast"
  ansatz backend.

All three are deterministic functions of (hamiltonian, circuit, theta):
the adjoint path never touches the executor layer, so gradients are
bitwise identical across serial/thread/process executors and any worker
count - the invariant the regression suite pins.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.backends import backend_spec
from repro.circuits.circuit import Circuit
from repro.circuits.gates import GATE_MATRICES, Gate
from repro.common.errors import ValidationError
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.operators.pauli import QubitOperator

#: valid values for the ``grad`` knob exposed by the VQE layer / CLI
GRADIENT_SOURCES = ("adjoint", "param_shift", "finite_diff")

# observability instruments (no-ops unless `repro.obs` is enabled); every
# counter is a deterministic function of (hamiltonian, circuit, theta), so
# the regression suite pins exact values across worker counts
_G_EVALS = _obs.counter(
    "grad.evaluations", "full gradient evaluations, labelled by source")
_G_FWD = _obs.counter(
    "grad.forward_sweeps",
    "adjoint forward passes (one ansatz state preparation per gradient)")
_G_BWD = _obs.counter(
    "grad.backward_sweeps",
    "adjoint backward passes (one per gradient, all P partials)")
_G_UNDO = _obs.counter(
    "grad.gate_undos",
    "inverse gate applications during backward sweeps (ket + bra)")
_G_CACHED = _obs.counter(
    "grad.cached_tensors",
    "overlap environments in the backward-pass cache, labelled "
    "built (advanced and stored) / reused (served without any advance)")
_G_GEMM = _obs.counter(
    "grad.gemm_calls",
    "GEMM invocations issued by overlap-environment advances")
_G_FLOPS = _obs.counter(
    "grad.modeled_flops",
    "cost-model flops of the adjoint overlap contractions", unit="flop")
_G_EQUIV = _obs.counter(
    "grad.eval_equivalents",
    "energy-evaluation equivalents consumed per gradient, labelled by "
    "source (adjoint: forward + bra build + two backward evolutions)")

#: energy-evaluation equivalents one adjoint gradient costs: the forward
#: ansatz run, the H|psi> bra construction, and the backward undo sweep on
#: the two states - independent of the parameter count
ADJOINT_EVAL_EQUIVALENTS = 4

_GENERATOR = {"RX": "X", "RY": "Y", "RZ": "Z"}


def _generator_ops(gate: Gate) -> dict[int, np.ndarray]:
    """Single-site factors of the gate generator G (RZZ: Z on each site)."""
    if gate.name == "RZZ":
        z = GATE_MATRICES["Z"]
        return {gate.qubits[0]: z, gate.qubits[1]: z}
    ch = _GENERATOR.get(gate.name)
    if ch is None:
        raise ValidationError(
            f"gate {gate.name!r} has no known generator; cannot "
            f"differentiate it analytically"
        )
    return {gate.qubits[0]: GATE_MATRICES[ch]}


def _strip_identity(op: QubitOperator) -> QubitOperator:
    """Drop identity terms: constants never contribute to the gradient."""
    return QubitOperator({t: c for t, c in op.terms.items()
                          if not t.is_identity()})


def n_parametric_gates(circuit: Circuit) -> int:
    """Parametric gate count G (parameter-shift costs 2G evaluations)."""
    return sum(1 for g in circuit.gates if g.param is not None)


# -- dense adjoint (the exact oracle) -----------------------------------------


def _apply_dense(psi: np.ndarray, mat: np.ndarray,
                 qubits: tuple[int, ...]) -> np.ndarray:
    """Contract a 1- or 2-qubit matrix onto a rank-n amplitude tensor."""
    k = len(qubits)
    mat = np.asarray(mat, dtype=complex).reshape((2,) * (2 * k))
    moved = np.tensordot(mat, psi, axes=(tuple(range(k, 2 * k)), qubits))
    return np.moveaxis(moved, tuple(range(k)), qubits)


def _apply_operator_dense(op: QubitOperator, psi: np.ndarray) -> np.ndarray:
    """H|psi> on the dense tensor, term by term."""
    out = np.zeros_like(psi)
    for term, coeff in op.terms.items():
        cur = psi
        for q, ch in term.ops():
            cur = _apply_dense(cur, GATE_MATRICES[ch], (q,))
        out = out + coeff * cur
    return out


def _adjoint_dense(hamiltonian: QubitOperator, circuit: Circuit,
                   theta: np.ndarray) -> np.ndarray:
    """Exact adjoint gradient on the dense statevector (the oracle)."""
    n = circuit.n_qubits
    gates = list(circuit.gates)
    bound = [g.bound(theta) for g in gates]
    psi = np.zeros((2,) * n, dtype=complex)
    psi[(0,) * n] = 1.0
    for g in bound:
        psi = _apply_dense(psi, g.matrix(), g.qubits)
    _G_FWD.inc()
    grad = np.zeros(circuit.n_parameters)
    op = _strip_identity(hamiltonian)
    if not op.terms:
        _G_BWD.inc()
        return grad
    phi = _apply_operator_dense(op, psi)
    for g, raw in zip(reversed(bound), reversed(gates)):
        if raw.param is not None:
            idx, mult = raw.param
            gp = psi
            for q, p in _generator_ops(raw).items():
                gp = _apply_dense(gp, p, (q,))
            grad[idx] += mult * float(np.imag(np.vdot(phi, gp)))
        inv = g.matrix().conj().T
        psi = _apply_dense(psi, inv, g.qubits)
        phi = _apply_dense(phi, inv, g.qubits)
        if _obs.REGISTRY.enabled:
            _G_UNDO.inc(2)
    _G_BWD.inc()
    return grad


# -- MPS adjoint --------------------------------------------------------------


class _OverlapEnvironments:
    """Prefix/suffix <bra|ket> environment caches for the backward sweep.

    ``left(b)`` / ``right(b)`` return the contraction of sites ``0..b-1`` /
    ``b..n-1`` of the (ket, bra) pair with open bonds at ``b``, advanced
    lazily through the measurement engine's rectangular GEMM kernels and
    cached per bond.  Undoing a gate over sites ``[lo, hi]`` invalidates
    only the environments whose span crosses those sites, so consecutive
    backward-sweep overlaps (which move locally along the chain) are served
    mostly from cache - the same prefix/suffix reuse the sweep-plan
    measurement path exploits, applied across two evolving states.
    """

    def __init__(self, ket, bra):
        from repro.simulators.mps_measure import (
            _advance_left,
            _advance_right,
        )

        self._adv_l = _advance_left
        self._adv_r = _advance_right
        self.ket = ket
        self.bra = bra
        n = ket.n_qubits
        self.n = n
        one = np.ones((1, 1, 1), dtype=complex)
        self._L: list[np.ndarray | None] = [one] + [None] * n
        self._R: list[np.ndarray | None] = [None] * n + [one]
        self._lvalid = 0   # L[0..lvalid] are valid
        self._rvalid = n   # R[rvalid..n] are valid

    def invalidate(self, lo: int, hi: int) -> None:
        """Drop environments whose span covers any site in ``[lo, hi]``."""
        self._lvalid = min(self._lvalid, lo)
        self._rvalid = max(self._rvalid, hi + 1)

    def _advance(self, kernel, env, q):
        bk = self.ket.tensors[q]
        bc = np.conj(self.bra.tensors[q])
        if _obs.REGISTRY.enabled:
            _G_GEMM.inc(2)
            kl, _, kr = bk.shape
            bl, _, br = bc.shape
            _G_FLOPS.inc(16.0 * (kl * kr * bl + kr * bl * br))
        return kernel(env, bk, bc)

    def left(self, b: int) -> np.ndarray:
        """Environment of sites ``0..b-1`` as a (1, ket_b, bra_b) array."""
        if self._lvalid >= b:
            _G_CACHED.inc(outcome="reused")
            return self._L[b]
        while self._lvalid < b:
            q = self._lvalid
            self._L[q + 1] = self._advance(self._adv_l, self._L[q], q)
            self._lvalid = q + 1
            _G_CACHED.inc(outcome="built")
        return self._L[b]

    def right(self, b: int) -> np.ndarray:
        """Environment of sites ``b..n-1`` as a (1, ket_b, bra_b) array."""
        if self._rvalid <= b:
            _G_CACHED.inc(outcome="reused")
            return self._R[b]
        while self._rvalid > b:
            q = self._rvalid - 1
            self._R[q] = self._advance(self._adv_r, self._R[q + 1], q)
            self._rvalid = q
            _G_CACHED.inc(outcome="built")
        return self._R[b]

    def overlap(self, ops: dict[int, np.ndarray]) -> complex:
        """<bra| prod_q O_q |ket> via cached environments + local advances."""
        sites = sorted(ops)
        s, e = sites[0], sites[-1]
        env = self.left(s)
        for q in range(s, e + 1):
            bk = self.ket.tensors[q]
            p = ops.get(q)
            if p is not None:
                bk = np.tensordot(p, bk, axes=((1,), (1,))).transpose(1, 0, 2)
            bc = np.conj(self.bra.tensors[q])
            if _obs.REGISTRY.enabled:
                _G_GEMM.inc(2)
                kl, _, kr = bk.shape
                bl, _, br = bc.shape
                _G_FLOPS.inc(16.0 * (kl * kr * bl + kr * bl * br))
            env = self._adv_l(env, bk, bc)
        r = self.right(e + 1)
        return complex(np.einsum("ij,ij->", env[0], r[0]))


def _undo_gate_mps(state, gate: Gate) -> tuple[int, int]:
    """Apply the inverse gate; returns the touched site span [lo, hi]."""
    inv = gate.matrix().conj().T
    if gate.n_qubits == 1:
        q = gate.qubits[0]
        state.apply_one_qubit(inv, q)
        return q, q
    q1, q2 = gate.qubits
    state.apply_two_qubit(inv, q1, q2)
    return min(q1, q2), max(q1, q2)


def _adjoint_mps(hamiltonian: QubitOperator, circuit: Circuit,
                 theta: np.ndarray, *, max_bond_dimension: int | None,
                 cutoff: float) -> np.ndarray:
    """Two-state adjoint gradient on matrix product states.

    Forward: run the *unfused* bound gate stream on a fresh MPS (fusion
    would absorb parametric rotations into opaque U2 blocks).  The bra
    ``H|psi>`` is materialized once as an MPS through the compiled-MPO
    zip-up (:meth:`repro.simulators.mpo.MPO.apply`) - its exact Schmidt
    rank is capped at ``min(2^b, 2^(n-b))``, so it stays small - and
    normalized, carrying ``||H|psi>||`` as a scalar.  Backward: undo each
    gate on both states, accumulating ``mult * scale * Im <phi|G|ket>``
    per parametric gate through the cached overlap environments.
    """
    from repro.simulators.mps import MPS
    from repro.simulators.mps_measure import compiled_mpo

    n = circuit.n_qubits
    gates = list(circuit.gates)
    bound = [g.bound(theta) for g in gates]
    ket = MPS(n, max_bond_dimension=max_bond_dimension, cutoff=cutoff)
    for g in bound:
        if g.n_qubits == 1:
            ket.apply_one_qubit(g.matrix(), g.qubits[0])
        else:
            ket.apply_two_qubit(g.matrix(), *g.qubits)
    _G_FWD.inc()
    grad = np.zeros(circuit.n_parameters)
    op = _strip_identity(hamiltonian)
    if not op.terms:
        _G_BWD.inc()
        return grad
    # bra cutoff: tight enough that the zip-up keeps the exact rank; the
    # bra is never bond-capped (its rank is bounded by the register anyway)
    bra, scale = compiled_mpo(op, n).apply(ket, cutoff=min(cutoff, 1e-13))
    envs = _OverlapEnvironments(ket, bra)
    for g, raw in zip(reversed(bound), reversed(gates)):
        if raw.param is not None:
            idx, mult = raw.param
            ov = envs.overlap(_generator_ops(raw))
            grad[idx] += mult * scale * ov.imag
        lo, hi = _undo_gate_mps(ket, g)
        _undo_gate_mps(bra, g)
        if _obs.REGISTRY.enabled:
            _G_UNDO.inc(2)
        envs.invalidate(lo, hi)
    _G_BWD.inc()
    return grad


# -- the shift / finite-difference oracles ------------------------------------


def param_shift_gradient(evaluator, theta: np.ndarray, *,
                         parameters=None) -> np.ndarray:
    """Gate-wise +-pi/2 parameter-shift gradient (2G energy evaluations).

    ``parameters`` optionally restricts the shift to gates bound to the
    given parameter indices (entries outside the subset stay zero) - the
    parity suite uses this to spot-check single components on circuits
    where the full 2G sweep would be wasteful.
    """
    circuit = evaluator.ansatz
    theta = np.asarray(theta, dtype=float)
    gates = list(circuit.gates)
    bound = [g.bound(theta) for g in gates]
    sel = None if parameters is None else {int(p) for p in parameters}
    grad = np.zeros(circuit.n_parameters)
    n_evals = 0
    for j, raw in enumerate(gates):
        if raw.param is None:
            continue
        idx, mult = raw.param
        if sel is not None and idx not in sel:
            continue
        a = bound[j].angle
        shifted_vals = []
        for shift in (0.5 * np.pi, -0.5 * np.pi):
            g = replace(bound[j], angle=a + shift)
            c = Circuit(n_qubits=circuit.n_qubits,
                        gates=bound[:j] + [g] + bound[j + 1:],
                        n_parameters=0, name=circuit.name)
            shifted_vals.append(evaluator.energy_of_circuit(c))
            n_evals += 1
        grad[idx] += mult * (shifted_vals[0] - shifted_vals[1]) / 2.0
    _G_EQUIV.inc(n_evals, source="param_shift")
    _G_EVALS.inc(source="param_shift")
    return grad


def finite_diff_gradient(f, theta: np.ndarray, *, step: float = 1e-6,
                         n_parameters: int | None = None,
                         parameters=None) -> np.ndarray:
    """Central finite differences of any energy callable (2P evaluations)."""
    theta = np.asarray(theta, dtype=float)
    p = theta.size if n_parameters is None else int(n_parameters)
    sel = range(p) if parameters is None else [int(i) for i in parameters]
    grad = np.zeros(p)
    n_evals = 0
    for i in sel:
        e = np.zeros(p)
        e[i] = step
        grad[i] = (f(theta + e) - f(theta - e)) / (2.0 * step)
        n_evals += 2
    _G_EQUIV.inc(n_evals, source="finite_diff")
    _G_EVALS.inc(source="finite_diff")
    return grad


# -- the gradient-source abstraction ------------------------------------------


class GradientSource:
    """A configured ``gradient(theta) -> dE/dtheta`` callable.

    Built by :func:`make_gradient`; optimizers consume it as an opaque
    callable, so swapping sources never changes the optimizer trajectory
    beyond the gradient values themselves (the regression suite pins
    bitwise-identical trajectories for value-identical sources).
    """

    def __init__(self, source: str, evaluator, *, fd_step: float = 1e-6,
                 n_parameters: int | None = None):
        self.source = source
        self.evaluator = evaluator
        self.fd_step = fd_step
        if n_parameters is None:
            circuit = getattr(evaluator, "ansatz", None)
            n_parameters = getattr(circuit, "n_parameters", None)
        self.n_parameters = n_parameters
        self.n_evaluations = 0

    def __call__(self, theta: np.ndarray, *, parameters=None) -> np.ndarray:
        self.n_evaluations += 1
        with _trace.span("grad.evaluate", source=self.source):
            if self.source == "adjoint":
                return adjoint_gradient(self.evaluator, theta)
            if self.source == "param_shift":
                return param_shift_gradient(self.evaluator, theta,
                                            parameters=parameters)
            return finite_diff_gradient(self.evaluator, theta,
                                        step=self.fd_step,
                                        n_parameters=self.n_parameters,
                                        parameters=parameters)


def adjoint_gradient(evaluator, theta: np.ndarray) -> np.ndarray:
    """All P partials from one forward + one backward pass.

    Dispatches on the evaluator's backend: the MPS backend runs the
    two-state tensor-network sweep at the evaluator's truncation settings;
    dense backends run the exact statevector oracle.
    """
    circuit = evaluator.ansatz
    theta = np.asarray(theta, dtype=float)
    spec = backend_spec(evaluator.simulator)
    if "adjoint" not in spec.gradients:
        raise ValidationError(
            f"backend {evaluator.simulator!r} declares no adjoint gradient "
            f"support (BackendSpec.gradients={spec.gradients}); use "
            f"grad='param_shift' or 'finite_diff'"
        )
    with _trace.span("grad.adjoint", simulator=evaluator.simulator,
                     n_parameters=int(circuit.n_parameters)):
        if spec.name == "mps":
            grad = _adjoint_mps(
                evaluator.hamiltonian, circuit, theta,
                max_bond_dimension=evaluator.max_bond_dimension,
                cutoff=evaluator.cutoff)
        else:
            grad = _adjoint_dense(evaluator.hamiltonian, circuit, theta)
    _G_EQUIV.inc(ADJOINT_EVAL_EQUIVALENTS, source="adjoint")
    _G_EVALS.inc(source="adjoint")
    return grad


def make_gradient(evaluator, source: str = "adjoint", *,
                  fd_step: float = 1e-6,
                  n_parameters: int | None = None) -> GradientSource:
    """Build a :class:`GradientSource` for an evaluator.

    ``finite_diff`` works with any energy callable (including the
    circuit-free "fast" backend); ``param_shift`` needs a circuit
    evaluator exposing ``energy_of_circuit``; ``adjoint`` additionally
    needs a backend declaring the capability on its
    :class:`repro.backends.BackendSpec`.
    """
    key = str(source).lower().replace("-", "_")
    if key not in GRADIENT_SOURCES:
        raise ValidationError(
            f"unknown gradient source {source!r}; "
            f"expected one of {GRADIENT_SOURCES}"
        )
    if key != "finite_diff":
        circuit = getattr(evaluator, "ansatz", None)
        if not isinstance(circuit, Circuit):
            raise ValidationError(
                f"gradient source {key!r} needs a circuit evaluator; "
                f"the closed-form ansatz backends support only "
                f"'finite_diff'"
            )
        if key == "adjoint":
            spec = backend_spec(evaluator.simulator)
            if "adjoint" not in spec.gradients:
                raise ValidationError(
                    f"backend {evaluator.simulator!r} declares no adjoint "
                    f"gradient support; registered analytic sources: "
                    f"{spec.gradients or '()'}"
                )
    if key == "finite_diff" and n_parameters is None:
        circuit = getattr(evaluator, "ansatz", None)
        n_parameters = getattr(circuit, "n_parameters", None)
        if n_parameters is None:
            n_parameters = getattr(evaluator, "n_parameters", None)
    return GradientSource(key, evaluator, fd_step=fd_step,
                          n_parameters=n_parameters)


__all__ = [
    "ADJOINT_EVAL_EQUIVALENTS",
    "GRADIENT_SOURCES",
    "GradientSource",
    "adjoint_gradient",
    "finite_diff_gradient",
    "make_gradient",
    "n_parametric_gates",
    "param_shift_gradient",
]
