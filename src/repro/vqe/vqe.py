"""The VQE driver: ansatz + Hamiltonian + optimizer + simulator.

Mirrors the paper's Fig. 4 workflow for a single process group: broadcast
parameters, evaluate all Pauli-string expectations, reduce to the energy,
hand it to the optimizer, repeat.  The distributed version of the same loop
lives in :mod:`repro.parallel.threelevel`; this class is the sequential
kernel it distributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends import backend_spec
from repro.common.errors import CheckpointError, ValidationError
from repro.circuits.circuit import Circuit
from repro.circuits.uccsd import UCCSDAnsatz
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.operators.pauli import QubitOperator
from repro.vqe.energy import EnergyEvaluator
from repro.vqe.optimizers import (
    OptimizationResult,
    minimize_adam,
    minimize_scipy,
    minimize_spsa,
)
from repro.vqe.rdm import measure_rdms

# observability instruments (no-ops unless `repro.obs` is enabled)
_M_RUNS = _obs.counter("vqe.runs", "completed VQE optimizations")
_M_ITERATIONS = _obs.counter(
    "vqe.iterations", "optimizer iterations across completed runs")


@dataclass
class VQEResult:
    """Converged VQE state."""

    energy: float
    parameters: np.ndarray
    history: list[float] = field(default_factory=list)
    n_evaluations: int = 0
    n_iterations: int = 0
    converged: bool = True
    optimizer: str = ""
    #: snapshot of the `repro.obs` metric registry taken as the run
    #: finished (None unless observability was enabled during the run)
    metrics: dict | None = None

    def energy_error(self, reference: float) -> float:
        """Absolute error against a reference (e.g. FCI) energy."""
        return abs(self.energy - reference)


class VQE:
    """Variational quantum eigensolver.

    Parameters
    ----------
    hamiltonian:
        Qubit Hamiltonian.
    ansatz:
        Parametric circuit, or a :class:`UCCSDAnsatz` (its circuit is built).
    simulator / method / max_bond_dimension / measurement:
        Backend name resolved through :mod:`repro.backends` (any registered
        circuit backend, or an ansatz backend such as "fast"); method, bond
        dimension and measurement mode (MPS backend: "auto" | "sweep" |
        "mpo" | "per_term") are forwarded to :class:`EnergyEvaluator`.
    optimizer:
        "cobyla" | "l-bfgs-b" | "nelder-mead" | "spsa" | "adam".
    grad:
        Gradient source for gradient-based optimizers ("adjoint" |
        "param_shift" | "finite_diff", see :mod:`repro.vqe.gradients`);
        ``None`` keeps each optimizer's built-in behaviour (adam:
        internal central finite differences; scipy methods: their own
        numerical jacobians).  "adjoint" requires a backend declaring the
        capability on its :class:`repro.backends.BackendSpec`
        ("statevector", "mps"); naming a source with a gradient-free
        optimizer (cobyla, nelder-mead, powell, spsa) is a validation
        error.
    parallel / n_workers:
        Forwarded to :class:`EnergyEvaluator`: executor name for the
        level-2 parallel measurement path and its worker count.  Call
        :meth:`close` after the run to release the worker pool.
    tune / calibration_cache:
        Forwarded to :class:`EnergyEvaluator`: the kernel autotuner knob
        ("off" | "static" | "auto") and its on-disk calibration cache
        directory.  Requires a backend declaring ``tunable`` on its
        :class:`repro.backends.BackendSpec` (the MPS backend).
    checkpoint_path / checkpoint_every / resume:
        Per-iteration optimizer snapshots (:mod:`repro.serve.checkpoint`,
        schema ``repro.ckpt/1``).  Only the iteration-structured
        optimizers (:data:`CHECKPOINT_OPTIMIZERS`) can checkpoint - the
        scipy bridges hide their loop state.  With ``resume=True`` an
        existing checkpoint is restored and the run continues to a
        trajectory bitwise identical to the uninterrupted one; a missing
        checkpoint file starts fresh, but a damaged one raises
        :class:`repro.common.errors.CheckpointError` (never a silent
        restart).
    """

    #: optimizers able to consume an injected gradient callable
    GRADIENT_OPTIMIZERS = ("adam", "l-bfgs-b", "bfgs", "slsqp")

    #: optimizers whose loop state can be checkpointed and resumed
    CHECKPOINT_OPTIMIZERS = ("adam", "spsa")

    def __init__(self, hamiltonian: QubitOperator,
                 ansatz: Circuit | UCCSDAnsatz, *,
                 simulator: str = "mps", method: str = "direct",
                 max_bond_dimension: int | None = None,
                 measurement: str | None = None,
                 optimizer: str = "cobyla", tolerance: float = 1e-8,
                 max_iterations: int = 2000, grad: str | None = None,
                 parallel: str | None = None,
                 n_workers: int | None = None, tune: str | None = None,
                 calibration_cache: str | None = None,
                 checkpoint_path: str | None = None,
                 checkpoint_every: int = 1, resume: bool = False):
        self.uccsd = ansatz if isinstance(ansatz, UCCSDAnsatz) else None
        spec = backend_spec(simulator)
        if spec.kind == "ansatz":
            # closed-form evaluator (e.g. "fast"): bypasses circuits, so it
            # needs the structured ansatz rather than a flat gate list
            if self.uccsd is None:
                raise ValidationError(
                    f"backend {simulator!r} requires a UCCSDAnsatz"
                )
            if parallel is not None:
                raise ValidationError(
                    f"backend {simulator!r} evaluates in closed form; the "
                    f"parallel measurement path needs a circuit backend"
                )
            if measurement is not None:
                raise ValidationError(
                    f"backend {simulator!r} evaluates in closed form; "
                    f"measurement= needs a circuit backend with the knob "
                    f"(e.g. 'mps')"
                )
            if tune is not None and tune != "off":
                raise ValidationError(
                    f"backend {simulator!r} evaluates in closed form; "
                    f"tune= needs a tunable circuit backend (e.g. 'mps')"
                )
            self.evaluator = spec.make_evaluator(hamiltonian, self.uccsd)
            self.n_parameters = self.uccsd.n_parameters
        else:
            circuit = (ansatz.circuit() if isinstance(ansatz, UCCSDAnsatz)
                       else ansatz)
            if circuit.n_parameters == 0:
                raise ValidationError("ansatz has no variational parameters")
            self.evaluator = EnergyEvaluator(
                hamiltonian, circuit, simulator=simulator, method=method,
                max_bond_dimension=max_bond_dimension,
                measurement=measurement, tune=tune,
                calibration_cache=calibration_cache, parallel=parallel,
                n_workers=n_workers)
            self.n_parameters = circuit.n_parameters
        self.optimizer = optimizer.lower()
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = int(checkpoint_every)
        self.resume = bool(resume)
        if checkpoint_path is not None and \
                self.optimizer not in self.CHECKPOINT_OPTIMIZERS:
            raise ValidationError(
                f"optimizer {self.optimizer!r} cannot checkpoint (scipy "
                f"bridges hide their loop state); checkpoint_path applies "
                f"to {self.CHECKPOINT_OPTIMIZERS}"
            )
        if self.resume and checkpoint_path is None:
            raise ValidationError(
                "resume=True requires checkpoint_path"
            )
        self.grad = None if grad is None else \
            str(grad).lower().replace("-", "_")
        if self.grad is not None:
            from repro.vqe.gradients import GRADIENT_SOURCES

            if self.grad not in GRADIENT_SOURCES:
                raise ValidationError(
                    f"unknown gradient source {grad!r}; expected one of "
                    f"{GRADIENT_SOURCES}"
                )
            if self.optimizer not in self.GRADIENT_OPTIMIZERS:
                raise ValidationError(
                    f"optimizer {self.optimizer!r} is gradient-free; "
                    f"grad= applies to {self.GRADIENT_OPTIMIZERS}"
                )
            if spec.kind == "ansatz" and self.grad != "finite_diff":
                raise ValidationError(
                    f"backend {simulator!r} evaluates in closed form; "
                    f"only grad='finite_diff' applies (adjoint and "
                    f"parameter-shift need circuits)"
                )
            if self.grad == "adjoint" and "adjoint" not in spec.gradients:
                raise ValidationError(
                    f"backend {simulator!r} declares no adjoint gradient "
                    f"support; registered analytic sources: "
                    f"{spec.gradients or '()'}"
                )

    def run(self, initial_parameters: np.ndarray | None = None,
            seed: int | None = None) -> VQEResult:
        """Minimize the energy; returns the best parameters found."""
        if initial_parameters is None:
            x0 = np.zeros(self.n_parameters)
        else:
            x0 = np.asarray(initial_parameters, dtype=float)
            if x0.size != self.n_parameters:
                raise ValidationError(
                    f"need {self.n_parameters} parameters, got {x0.size}"
                )
        with _trace.span("vqe.run", optimizer=self.optimizer,
                         n_parameters=int(self.n_parameters)):
            res = self._dispatch(x0, seed)
        if _obs.REGISTRY.enabled:
            _M_RUNS.inc()
            _M_ITERATIONS.inc(res.n_iterations)
        return VQEResult(
            energy=float(res.fun),
            parameters=res.x,
            history=res.history,
            n_evaluations=res.n_evaluations,
            n_iterations=res.n_iterations,
            converged=res.converged,
            optimizer=self.optimizer,
            metrics=_obs.REGISTRY.snapshot() if _obs.REGISTRY.enabled
            else None,
        )

    def _dispatch(self, x0: np.ndarray, seed: int | None) -> OptimizationResult:
        f = self.evaluator
        gradient = None
        if self.grad is not None:
            from repro.vqe.gradients import make_gradient

            gradient = make_gradient(self.evaluator, self.grad,
                                     n_parameters=self.n_parameters)
        if self.optimizer in ("cobyla", "l-bfgs-b", "nelder-mead", "slsqp",
                              "powell", "bfgs"):
            return minimize_scipy(f, x0, method=self.optimizer.upper(),
                                  tolerance=self.tolerance,
                                  max_iterations=self.max_iterations,
                                  gradient=gradient)
        checkpoint, resume_state = self._checkpoint_hooks()
        if self.optimizer == "spsa":
            return minimize_spsa(f, x0, max_iterations=self.max_iterations,
                                 seed=seed, checkpoint=checkpoint,
                                 resume_state=resume_state)
        if self.optimizer == "adam":
            return minimize_adam(f, x0, max_iterations=self.max_iterations,
                                 tolerance=self.tolerance,
                                 gradient=gradient, checkpoint=checkpoint,
                                 resume_state=resume_state)
        raise ValidationError(f"unknown optimizer {self.optimizer!r}")

    def _checkpoint_hooks(self):
        """(checkpoint sink, resume state) for the iteration optimizers."""
        if self.checkpoint_path is None:
            return None, None
        from repro.serve.checkpoint import CheckpointWriter, load_checkpoint

        resume_state = None
        if self.resume:
            try:
                doc = load_checkpoint(self.checkpoint_path,
                                      expect_optimizer=self.optimizer)
            except CheckpointError as exc:
                if exc.reason != "missing":
                    raise  # damaged checkpoints must surface, not restart
            else:
                resume_state = doc["state"]
        writer = CheckpointWriter(self.checkpoint_path,
                                  optimizer=self.optimizer,
                                  every=self.checkpoint_every)
        return writer, resume_state

    def close(self) -> None:
        """Release evaluator resources (the parallel worker pool)."""
        close = getattr(self.evaluator, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "VQE":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- post-processing --------------------------------------------------------

    def reduced_density_matrices(self, parameters: np.ndarray
                                 ) -> tuple[np.ndarray, np.ndarray]:
        """Spin-summed (1-RDM, 2-RDM) of |psi(parameters)>.

        Requires the qubit register to hold interleaved spin orbitals (the
        molecular convention); n_spatial = n_qubits / 2.
        """
        n_qubits = self.evaluator.n_qubits
        if n_qubits % 2:
            raise ValidationError(
                "RDM measurement expects an even qubit count "
                "(interleaved spin orbitals)"
            )
        sim = self.evaluator.final_state(parameters)
        return measure_rdms(sim, n_qubits // 2)
