"""Circuit storage schemes - the memory-efficient optimization of Sec. III-D.

A VQE over M Pauli strings nominally needs M circuits, each = (identical
ansatz prefix) + (string-specific measurement part).  For benzene the paper
counts 330816 strings; replicating the ansatz per circuit "brings a lot of
pressure on the memory space of CGs" and re-synchronizing all circuits each
optimization step costs time.  The fix: keep ONE ansatz replica per process,
build the measurement parts on the fly during the first energy evaluation,
and keep them constant afterwards.

:class:`ReplicatedCircuitStore` implements the naive scheme and
:class:`SharedAnsatzCircuitStore` the paper's scheme; the Fig. 9 benchmark
measures the ~15x per-iteration speedup and ~20x memory ratio between them.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.operators.pauli import PauliTerm
from repro.vqe.energy import hadamard_test_circuit


def _gadget(ansatz: Circuit, term: PauliTerm) -> Circuit:
    """Hadamard-test measurement gadget on the ansatz register.

    The ansatz register's last qubit is the ancilla (the paper's Fig. 5
    layout: q4 for the 4-qubit H2 problem), so the gadget stays within the
    existing width.
    """
    g = hadamard_test_circuit(term, ansatz.n_qubits - 1,
                              ancilla=ansatz.n_qubits - 1)
    if g.n_qubits < ansatz.n_qubits:
        g = Circuit(n_qubits=ansatz.n_qubits, gates=list(g.gates),
                    n_parameters=0)
    return g


class ReplicatedCircuitStore:
    """Naive storage: one full (ansatz + measurement) circuit per string.

    Every :meth:`bind` call rebuilds and rebinds all M full circuits -
    modelling the per-step circuit synchronization overhead of the naive
    distributed scheme.
    """

    def __init__(self, ansatz: Circuit, terms: list[PauliTerm]):
        self.ansatz = ansatz
        self.terms = list(terms)
        self.circuits: list[Circuit] = [
            ansatz.compose(_gadget(ansatz, t)) for t in self.terms
        ]

    def n_circuits(self) -> int:
        return len(self.circuits)

    def memory_bytes(self) -> int:
        return sum(c.memory_bytes() for c in self.circuits)

    def bind(self, theta: np.ndarray) -> list[Circuit]:
        """Rebind all full circuits (the expensive naive per-step path)."""
        return [c.bind(theta) for c in self.circuits]


class SharedAnsatzCircuitStore:
    """Paper scheme: one ansatz replica + cached measurement parts.

    Measurement gadgets are constructed lazily on first access ("on-the-fly
    in the first energy evaluation") and reused verbatim afterwards; binding
    touches only the single ansatz replica.
    """

    def __init__(self, ansatz: Circuit, terms: list[PauliTerm]):
        self.ansatz = ansatz
        self.terms = list(terms)
        self._gadgets: dict[PauliTerm, Circuit] = {}

    def measurement_circuit(self, term: PauliTerm) -> Circuit:
        g = self._gadgets.get(term)
        if g is None:
            g = _gadget(self.ansatz, term)
            self._gadgets[term] = g
        return g

    def n_circuits(self) -> int:
        return len(self.terms)

    def memory_bytes(self) -> int:
        total = self.ansatz.memory_bytes()
        for g in self._gadgets.values():
            total += g.memory_bytes()
        return total

    def bind(self, theta: np.ndarray) -> Circuit:
        """Bind only the shared ansatz replica."""
        return self.ansatz.bind(theta)

    def materialize_all(self) -> None:
        """Force-build every gadget (the 'first energy evaluation' step)."""
        for t in self.terms:
            self.measurement_circuit(t)
