"""Variational quantum eigensolver on top of the circuit simulators.

Implements the paper's VQE pipeline: the qubit Hamiltonian is split into
Pauli strings, each measured by its own circuit (optionally via the
paper-faithful ancilla Hadamard test), with the memory-efficient shared
ansatz storage of Sec. III-D and the process-level partitioning of Fig. 4.
"""

from repro.vqe.grouping import partition_pauli_terms, estimate_term_cost
from repro.vqe.energy import EnergyEvaluator, hadamard_test_circuit
from repro.vqe.circuit_store import (
    ReplicatedCircuitStore,
    SharedAnsatzCircuitStore,
)
from repro.vqe.optimizers import (
    OptimizationResult,
    minimize_spsa,
    minimize_adam,
    minimize_scipy,
)
from repro.vqe.gradients import (
    GRADIENT_SOURCES,
    GradientSource,
    adjoint_gradient,
    finite_diff_gradient,
    make_gradient,
    param_shift_gradient,
)
from repro.vqe.vqe import VQE, VQEResult
from repro.vqe.rdm import measure_rdms

__all__ = [
    "partition_pauli_terms",
    "estimate_term_cost",
    "EnergyEvaluator",
    "hadamard_test_circuit",
    "ReplicatedCircuitStore",
    "SharedAnsatzCircuitStore",
    "OptimizationResult",
    "minimize_spsa",
    "minimize_adam",
    "minimize_scipy",
    "GRADIENT_SOURCES",
    "GradientSource",
    "adjoint_gradient",
    "finite_diff_gradient",
    "make_gradient",
    "param_shift_gradient",
    "VQE",
    "VQEResult",
    "measure_rdms",
]
