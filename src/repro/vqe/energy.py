"""Energy evaluation strategies for VQE.

Two measurement paths, both returning <psi(theta)|H|psi(theta)>:

* ``direct`` - run the ansatz once, measure the whole Hamiltonian on the
  final state in one batched call.  On dense backends the operator is
  compiled once (terms grouped by flip mask, see
  :mod:`repro.simulators.pauli_kernels`) and reused across optimizer
  iterations; the MPS backend batches through its transfer-matrix path.
  This is the fast path used inside optimization loops.
* ``hadamard`` - the paper-faithful path (Fig. 5): one circuit per Pauli
  string, an ancilla qubit, controlled-Pauli gates and <Z_ancilla> = Re<P>.
  Exactly mimics what a quantum computer (and the paper's simulator) does.

The test-suite asserts both paths agree to machine precision.
"""

from __future__ import annotations

import numpy as np

from repro.backends import backend_spec, resolve_backend
from repro.common.errors import TransportError, ValidationError
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, controlled_pauli_gate
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.operators.pauli import PauliTerm, QubitOperator
from repro.simulators.pauli_kernels import (
    MAX_COMPILED_QUBITS,
    CompiledObservable,
)

# observability instruments (no-ops unless `repro.obs` is enabled)
_M_ENERGY_EVALS = _obs.counter(
    "vqe.energy_evaluations",
    "energy evaluations, labelled by measurement method")
_M_ANSATZ_RUNS = _obs.counter(
    "vqe.ansatz_runs", "ansatz state preparations")
_M_PARALLEL_EVALS = _obs.counter(
    "vqe.parallel_evaluations",
    "direct evaluations routed through the level-2 executor, labelled "
    "by executor backend")


def hadamard_test_circuit(term: PauliTerm, n_qubits: int,
                          ancilla: int | None = None) -> Circuit:
    """Measurement gadget computing Re<P> as <Z_ancilla>.

    The returned circuit acts on ``n_qubits + 1`` qubits (ancilla defaults to
    the last), mirroring the paper's Fig. 5 layout where q4 is the H2
    Hadamard-test ancilla.
    """
    anc = ancilla if ancilla is not None else n_qubits
    width = max(n_qubits, anc + 1)
    c = Circuit(n_qubits=width, name="hadamard_test")
    c.append(Gate("H", (anc,)))
    for q, ch in term.ops():
        if q == anc:
            raise ValidationError("Pauli support overlaps the ancilla")
        c.append(controlled_pauli_gate(anc, q, ch))
    c.append(Gate("H", (anc,)))
    return c


class EnergyEvaluator:
    """Evaluates VQE energies for a Hamiltonian / parametric ansatz pair.

    Parameters
    ----------
    hamiltonian:
        Qubit Hamiltonian (weighted Pauli strings, hermitian).
    ansatz:
        Parametric circuit preparing |psi(theta)>.
    simulator:
        Name of any registered circuit backend (see
        :func:`repro.backends.available_backends`), e.g. "mps",
        "statevector" or "density_matrix".
    method:
        "direct" or "hadamard" (see module docstring).
    max_bond_dimension, cutoff:
        Cross-backend options forwarded to the backend factory (the MPS
        backend consumes them; dense backends ignore them).
    measurement:
        Observable-evaluation strategy for backends that advertise
        ``measurement_modes`` (the MPS backend: "auto" | "sweep" | "mpo" |
        "per_term").  None keeps the backend's registered default; naming
        a mode on a backend without the knob is a validation error.
    tune, calibration_cache:
        The kernel autotuner (:mod:`repro.tune`): ``tune=None`` (or
        ``"off"``) leaves dispatch on the static flop model,
        ``"static"`` routes the identical decisions through the policy
        layer for observability, ``"auto"`` attaches the calibrated
        time model - loading (or probing once into)
        ``calibration_cache`` / the default on-disk cache.  Only
        accepted on backends whose spec declares ``tunable`` (the MPS
        backend); the configuration is process-global and shipped to
        process-pool workers so every process dispatches identically.
    parallel, n_workers, n_groups:
        The level-2 parallel measurement path: ``parallel`` names a
        registered executor ("serial" | "thread" | "process"), the
        Hamiltonian is partitioned once into worker-count-independent
        Pauli-group batches, and each direct evaluation dispatches the
        prepared state - dense amplitudes or MPS tensor blocks, shipped
        through the backend's registered state transport on the process
        executor (:mod:`repro.parallel.transport`) - to the pool with
        deterministic reduction: energies are bitwise identical across
        executors and worker counts.  Requires a backend declaring a
        ``transport`` on its :class:`repro.backends.BackendSpec` and the
        direct method; a backend without one (e.g. 'density_matrix')
        raises a structured :class:`repro.common.errors.TransportError`.
        Call :meth:`close` when done to release the worker pool.
    """

    def __init__(self, hamiltonian: QubitOperator, ansatz: Circuit, *,
                 simulator: str = "mps", method: str = "direct",
                 max_bond_dimension: int | None = None,
                 cutoff: float = 1e-12, measurement: str | None = None,
                 tune: str | None = None,
                 calibration_cache: str | None = None,
                 shots: int | None = None,
                 seed: int | None = None, parallel: str | None = None,
                 n_workers: int | None = None, n_groups: int | None = None):
        if not hamiltonian.is_hermitian():
            raise ValidationError("Hamiltonian must be hermitian")
        if method not in ("direct", "hadamard"):
            raise ValidationError(f"unknown method {method!r}")
        spec = backend_spec(simulator)
        if spec.kind != "circuit":
            raise ValidationError(
                f"backend {simulator!r} does not execute circuits; "
                f"construct its evaluator through repro.backends instead"
            )
        if shots is not None and (method != "hadamard" or shots < 1):
            raise ValidationError(
                "shots requires method='hadamard' and shots >= 1"
            )
        if measurement is not None:
            if not spec.measurement_modes:
                raise ValidationError(
                    f"backend {simulator!r} has no measurement modes; "
                    f"only backends advertising measurement_modes (e.g. "
                    f"'mps') accept measurement="
                )
            if measurement not in spec.measurement_modes:
                raise ValidationError(
                    f"unknown measurement mode {measurement!r} for backend "
                    f"{simulator!r}; expected one of {spec.measurement_modes}"
                )
        if tune is not None:
            from repro.tune.policy import TUNE_MODES, configure_tuning

            if tune not in TUNE_MODES:
                raise ValidationError(
                    f"unknown tune mode {tune!r}; expected one of "
                    f"{TUNE_MODES}")
            if tune != "off" and not spec.tunable:
                raise ValidationError(
                    f"backend {simulator!r} does not honor the kernel "
                    f"autotuner; tune= requires a tunable backend "
                    f"(e.g. 'mps')")
            # an explicit "off" resets the process-global state; None
            # leaves an externally configured policy alone
            configure_tuning(tune, cache_dir=calibration_cache)
        if parallel is not None:
            if method != "direct":
                raise ValidationError(
                    "the parallel measurement path requires method='direct'"
                )
            if spec.transport is None:
                from repro.parallel.transport import available_transports

                raise TransportError(
                    f"backend {simulator!r} declares no state transport; "
                    f"the parallel path needs a shareable state (e.g. "
                    f"'statevector' or 'mps')",
                    backend=simulator, executor=parallel,
                    available=tuple(available_transports()))
        self.hamiltonian = hamiltonian
        self.ansatz = ansatz
        self.simulator = simulator
        self.method = method
        self.max_bond_dimension = max_bond_dimension
        self.cutoff = cutoff
        self.measurement = measurement
        self.tune = tune if tune is not None else "off"
        self.calibration_cache = calibration_cache
        #: finite measurement budget per Pauli string: the exact ancilla
        #: <Z> is replaced by a binomial estimate, modelling what a real
        #: quantum computer returns (the noiseless-expectation default is
        #: what the paper's simulator computes)
        self.shots = shots
        if shots is not None:
            from repro.common.rng import default_rng

            self._rng = default_rng(seed)
        self.n_qubits = ansatz.n_qubits
        self.evaluations = 0
        self.parallel = parallel
        self.n_workers = n_workers
        self.n_groups = n_groups
        self._terms = [(t, c) for t, c in hamiltonian]
        #: the Hamiltonian compiled for batched dense measurement — built
        #: lazily on the first direct evaluation against a dense backend,
        #: then reused across every optimizer iteration
        self._compiled: CompiledObservable | None = None
        #: parallel-path state, built lazily on first use so that serial
        #: evaluators never pay pool start-up costs
        self._grouped = None
        self._executor = None
        self._counters = None
        if method == "hadamard":
            # ancilla lives one past the logical register
            self._gadgets = {
                t: hadamard_test_circuit(t, self.n_qubits)
                for t, _ in self._terms if not t.is_identity()
            }

    # -- simulators -----------------------------------------------------------

    def _fresh_sim(self, width: int):
        opts = dict(max_bond_dimension=self.max_bond_dimension,
                    cutoff=self.cutoff)
        if self.measurement is not None:
            opts["measurement"] = self.measurement
        return resolve_backend(self.simulator, width, **opts)

    def _run_ansatz(self, theta: np.ndarray, width: int):
        bound = self.ansatz.bind(theta)
        if width != bound.n_qubits:
            wide = Circuit(n_qubits=width, gates=list(bound.gates),
                           n_parameters=0, name=bound.name)
            bound = wide
        sim = self._fresh_sim(width)
        _M_ANSATZ_RUNS.inc()
        return sim.run(bound)

    # -- public API ----------------------------------------------------------------

    def energy(self, theta: np.ndarray) -> float:
        """<H> at the given parameters (dispatches on the chosen method)."""
        self.evaluations += 1
        _M_ENERGY_EVALS.inc(method=self.method)
        with _trace.span("vqe.energy", method=self.method,
                         simulator=self.simulator):
            if self.method == "direct":
                return self._energy_direct(theta)
            return self._energy_hadamard(theta)

    __call__ = energy

    def _parallel_engine(self):
        """Lazily build the (grouped observable, executor, counters) trio.

        Imported lazily: :mod:`repro.parallel.executor` pulls in the
        grouping layer, which imports this package.
        """
        if self._grouped is None:
            from repro.parallel.executor import (
                ExecutorCounters,
                GroupedObservable,
                resolve_executor,
            )

            self._grouped = GroupedObservable(self.hamiltonian,
                                              self.n_qubits,
                                              n_groups=self.n_groups)
            self._executor = resolve_executor(self.parallel,
                                              max_workers=self.n_workers)
            self._counters = ExecutorCounters()
        return self._grouped, self._executor, self._counters

    def parallel_report(self) -> dict | None:
        """Per-level timing counters of the parallel path (None if unused)."""
        if self._counters is None:
            return None
        return self._counters.to_dict()

    def close(self) -> None:
        """Release the parallel worker pool (no-op on the serial path)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
            self._grouped = None

    def __enter__(self) -> "EnergyEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def energy_of_circuit(self, circuit: Circuit) -> float:
        """<H> after running an arbitrary *bound* circuit on a fresh backend.

        Routes through exactly the same measurement machinery as
        :meth:`energy` (parallel grouped observables, compiled dense
        kernels, the MPS measurement engine), so shifted-gate evaluations
        of the parameter-shift gradient source are numerically identical
        to ordinary energy evaluations of the same state.
        """
        if circuit.n_qubits != self.n_qubits:
            raise ValidationError(
                f"circuit width {circuit.n_qubits} != register "
                f"{self.n_qubits}"
            )
        sim = self._fresh_sim(self.n_qubits)
        sim.run(circuit)
        return self._measure_state(sim)

    def gradient_source(self, source: str = "adjoint", *,
                        fd_step: float = 1e-6):
        """A configured ``gradient(theta) -> dE/dtheta`` callable.

        Thin forwarding to :func:`repro.vqe.gradients.make_gradient`
        (imported lazily: the gradients module pulls in the simulator
        stack).
        """
        from repro.vqe.gradients import make_gradient

        return make_gradient(self, source, fd_step=fd_step)

    def _energy_direct(self, theta: np.ndarray) -> float:
        sim = self._run_ansatz(theta, self.n_qubits)
        return self._measure_state(sim)

    def _measure_state(self, sim) -> float:
        """Measure <H> on a prepared backend (the direct-path dispatch)."""
        if (self.parallel is not None
                and getattr(sim, "natively_dense", False)):
            grouped, executor, counters = self._parallel_engine()
            _M_PARALLEL_EVALS.inc(executor=executor.name)
            return grouped.expectation(sim.statevector(),
                                       executor=executor,
                                       counters=counters)
        if self.parallel is not None:
            from repro.simulators.mps import MPS

            state = getattr(sim, "state", None)
            if isinstance(state, MPS):
                grouped, executor, counters = self._parallel_engine()
                _M_PARALLEL_EVALS.inc(executor=executor.name)
                if self.measurement == "mpo":
                    mode = "mpo"
                elif (self.tune == "auto"
                        and self.measurement in (None, "auto")):
                    # calibrated dispatch decides per group; workers ship
                    # the parent's calibration so choices agree everywhere
                    mode = "auto"
                else:
                    mode = "sweep"
                return grouped.expectation_mps(state, executor=executor,
                                               counters=counters, mode=mode)
        if (getattr(sim, "natively_dense", False)
                and self.n_qubits <= MAX_COMPILED_QUBITS):
            # compiled once per Hamiltonian: O(#distinct masks) gathers per
            # evaluation instead of O(terms x weight) tensor contractions
            if self._compiled is None:
                self._compiled = CompiledObservable(self.hamiltonian,
                                                    self.n_qubits)
            return self._compiled.expectation(sim.statevector())
        # non-dense backends (MPS, density matrix) batch internally behind
        # the same expectation(op) interface
        return sim.expectation(self.hamiltonian)

    def _energy_hadamard(self, theta: np.ndarray) -> float:
        """One circuit per Pauli string with an ancilla Hadamard test.

        The ansatz state is prepared once and snapshotted; each measurement
        gadget runs on a copy - this is exactly the shared-ansatz execution
        model of Sec. III-D.
        """
        width = self.n_qubits + 1
        base = self._run_ansatz(theta, width)
        total = 0.0
        anc_z = PauliTerm.from_ops([(self.n_qubits, "Z")])
        for term, coeff in self._terms:
            if term.is_identity():
                total += float(np.real(coeff))
                continue
            sim = self._copy_sim(base)
            sim.run(self._gadgets[term])
            z = sim.expectation_pauli(anc_z)
            if self.shots is not None:
                p = min(1.0, max(0.0, 0.5 * (1.0 + z)))
                z = 2.0 * self._rng.binomial(self.shots, p) / self.shots - 1.0
            total += float(np.real(coeff)) * z
        return total

    def _copy_sim(self, sim):
        return sim.copy()

    def final_state(self, theta: np.ndarray):
        """Simulator holding |psi(theta)> (for RDM measurement)."""
        return self._run_ansatz(theta, self.n_qubits)
