"""Energy evaluation strategies for VQE.

Two measurement paths, both returning <psi(theta)|H|psi(theta)>:

* ``direct`` - run the ansatz once, evaluate every <P_i> by tensor
  contraction on the final state.  This is the fast path used inside
  optimization loops.
* ``hadamard`` - the paper-faithful path (Fig. 5): one circuit per Pauli
  string, an ancilla qubit, controlled-Pauli gates and <Z_ancilla> = Re<P>.
  Exactly mimics what a quantum computer (and the paper's simulator) does.

The test-suite asserts both paths agree to machine precision.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, controlled_pauli_gate
from repro.operators.pauli import PauliTerm, QubitOperator
from repro.simulators.statevector import StatevectorSimulator
from repro.simulators.mps_circuit import MPSSimulator


def hadamard_test_circuit(term: PauliTerm, n_qubits: int,
                          ancilla: int | None = None) -> Circuit:
    """Measurement gadget computing Re<P> as <Z_ancilla>.

    The returned circuit acts on ``n_qubits + 1`` qubits (ancilla defaults to
    the last), mirroring the paper's Fig. 5 layout where q4 is the H2
    Hadamard-test ancilla.
    """
    anc = ancilla if ancilla is not None else n_qubits
    width = max(n_qubits, anc + 1)
    c = Circuit(n_qubits=width, name="hadamard_test")
    c.append(Gate("H", (anc,)))
    for q, ch in term.ops():
        if q == anc:
            raise ValidationError("Pauli support overlaps the ancilla")
        c.append(controlled_pauli_gate(anc, q, ch))
    c.append(Gate("H", (anc,)))
    return c


class EnergyEvaluator:
    """Evaluates VQE energies for a Hamiltonian / parametric ansatz pair.

    Parameters
    ----------
    hamiltonian:
        Qubit Hamiltonian (weighted Pauli strings, hermitian).
    ansatz:
        Parametric circuit preparing |psi(theta)>.
    simulator:
        "mps" or "statevector".
    method:
        "direct" or "hadamard" (see module docstring).
    max_bond_dimension, cutoff:
        MPS controls (ignored for statevector).
    """

    def __init__(self, hamiltonian: QubitOperator, ansatz: Circuit, *,
                 simulator: str = "mps", method: str = "direct",
                 max_bond_dimension: int | None = None,
                 cutoff: float = 1e-12, shots: int | None = None,
                 seed: int | None = None):
        if not hamiltonian.is_hermitian():
            raise ValidationError("Hamiltonian must be hermitian")
        if method not in ("direct", "hadamard"):
            raise ValidationError(f"unknown method {method!r}")
        if simulator not in ("mps", "statevector"):
            raise ValidationError(f"unknown simulator {simulator!r}")
        if shots is not None and (method != "hadamard" or shots < 1):
            raise ValidationError(
                "shots requires method='hadamard' and shots >= 1"
            )
        self.hamiltonian = hamiltonian
        self.ansatz = ansatz
        self.simulator = simulator
        self.method = method
        self.max_bond_dimension = max_bond_dimension
        self.cutoff = cutoff
        #: finite measurement budget per Pauli string: the exact ancilla
        #: <Z> is replaced by a binomial estimate, modelling what a real
        #: quantum computer returns (the noiseless-expectation default is
        #: what the paper's simulator computes)
        self.shots = shots
        if shots is not None:
            from repro.common.rng import default_rng

            self._rng = default_rng(seed)
        self.n_qubits = ansatz.n_qubits
        self.evaluations = 0
        self._terms = [(t, c) for t, c in hamiltonian]
        if method == "hadamard":
            # ancilla lives one past the logical register
            self._gadgets = {
                t: hadamard_test_circuit(t, self.n_qubits)
                for t, _ in self._terms if not t.is_identity()
            }

    # -- simulators -----------------------------------------------------------

    def _fresh_sim(self, width: int):
        if self.simulator == "mps":
            return MPSSimulator(width,
                                max_bond_dimension=self.max_bond_dimension,
                                cutoff=self.cutoff)
        return StatevectorSimulator(width)

    def _run_ansatz(self, theta: np.ndarray, width: int):
        bound = self.ansatz.bind(theta)
        if width != bound.n_qubits:
            wide = Circuit(n_qubits=width, gates=list(bound.gates),
                           n_parameters=0, name=bound.name)
            bound = wide
        sim = self._fresh_sim(width)
        return sim.run(bound)

    # -- public API ----------------------------------------------------------------

    def energy(self, theta: np.ndarray) -> float:
        """<H> at the given parameters (dispatches on the chosen method)."""
        self.evaluations += 1
        if self.method == "direct":
            return self._energy_direct(theta)
        return self._energy_hadamard(theta)

    __call__ = energy

    def _energy_direct(self, theta: np.ndarray) -> float:
        sim = self._run_ansatz(theta, self.n_qubits)
        total = 0.0
        for term, coeff in self._terms:
            if term.is_identity():
                total += float(np.real(coeff))
            else:
                total += float(np.real(coeff)) * sim.expectation_pauli(term)
        return total

    def _energy_hadamard(self, theta: np.ndarray) -> float:
        """One circuit per Pauli string with an ancilla Hadamard test.

        The ansatz state is prepared once and snapshotted; each measurement
        gadget runs on a copy - this is exactly the shared-ansatz execution
        model of Sec. III-D.
        """
        width = self.n_qubits + 1
        base = self._run_ansatz(theta, width)
        total = 0.0
        anc_z = PauliTerm.from_ops([(self.n_qubits, "Z")])
        for term, coeff in self._terms:
            if term.is_identity():
                total += float(np.real(coeff))
                continue
            sim = self._copy_sim(base)
            sim.run(self._gadgets[term])
            z = sim.expectation_pauli(anc_z)
            if self.shots is not None:
                p = min(1.0, max(0.0, 0.5 * (1.0 + z)))
                z = 2.0 * self._rng.binomial(self.shots, p) / self.shots - 1.0
            total += float(np.real(coeff)) * z
        return total

    def _copy_sim(self, sim):
        if self.simulator == "mps":
            clone = MPSSimulator(sim.n_qubits,
                                 max_bond_dimension=self.max_bond_dimension,
                                 cutoff=self.cutoff)
            clone.set_state(sim.state.copy())
            return clone
        clone = StatevectorSimulator(sim.n_qubits)
        clone.set_state(sim.statevector())
        return clone

    def final_state(self, theta: np.ndarray):
        """Simulator holding |psi(theta)> (for RDM measurement)."""
        return self._run_ansatz(theta, self.n_qubits)
