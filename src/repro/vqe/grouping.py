"""Partitioning of Pauli strings over processes (the second parallel level).

The paper (Sec. III-C/D) maps mutually exclusive subsets of Pauli strings to
MPI processes and highlights an "adapted dynamical load balancing algorithm".
Strings have different evaluation costs - a string of weight w touching a
span of qubits costs roughly its span in MPS transfer-matrix steps - so we
provide block, round-robin and cost-aware LPT (longest processing time)
partitioning; the scheduler tests assert LPT's makespan bound.
"""

from __future__ import annotations

import heapq

from repro.common.errors import ValidationError
from repro.operators.pauli import PauliTerm, QubitOperator


def estimate_term_cost(term: PauliTerm) -> float:
    """Relative cost of measuring one Pauli string on an MPS.

    The transfer contraction of Eq. 11 runs over the contiguous range
    spanning the support, so cost ~ span; the identity term is free.
    """
    ops = term.ops()
    if not ops:
        return 0.0
    qubits = [q for q, _ in ops]
    return float(max(qubits) - min(qubits) + 1)


def partition_pauli_terms(hamiltonian: QubitOperator, n_groups: int,
                          strategy: str = "lpt"
                          ) -> list[list[tuple[PauliTerm, complex]]]:
    """Split the Hamiltonian's terms into ``n_groups`` disjoint subsets.

    Strategies
    ----------
    ``block``:
        Contiguous chunks in term order.
    ``round_robin``:
        Term i goes to group i mod n_groups.
    ``lpt``:
        Greedy longest-processing-time: sort by estimated cost descending,
        always assign to the currently lightest group.  Guarantees makespan
        <= (4/3 - 1/(3m)) * optimal.
    """
    if n_groups < 1:
        raise ValidationError("need at least one group")
    items = [(t, c) for t, c in hamiltonian if not t.is_identity()]
    groups: list[list[tuple[PauliTerm, complex]]] = [[] for _ in range(n_groups)]
    if strategy == "block":
        size = (len(items) + n_groups - 1) // max(1, n_groups)
        for g in range(n_groups):
            groups[g] = items[g * size:(g + 1) * size]
    elif strategy == "round_robin":
        for i, it in enumerate(items):
            groups[i % n_groups].append(it)
    elif strategy == "lpt":
        # compute each term's cost exactly once; the sort key and the heap
        # updates reuse it instead of re-deriving the span per comparison
        costed = sorted(((estimate_term_cost(t), (t, c)) for t, c in items),
                        key=lambda pair: pair[0], reverse=True)
        heap = [(0.0, g) for g in range(n_groups)]
        heapq.heapify(heap)
        for cost, it in costed:
            load, g = heapq.heappop(heap)
            groups[g].append(it)
            heapq.heappush(heap, (load + cost, g))
    else:
        raise ValidationError(f"unknown partition strategy {strategy!r}")
    return groups


def group_loads(groups: list[list[tuple[PauliTerm, complex]]]) -> list[float]:
    """Estimated cost per group (for load-balance diagnostics)."""
    return [sum(estimate_term_cost(t) for t, _ in g) for g in groups]
