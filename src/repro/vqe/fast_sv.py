"""Fast dense-vector evaluator for UCC ansatz states.

Every factor of the Trotterized UCC ansatz is exp(i phi P) for a Pauli
string P, and a Pauli string acts on the computational basis as a
permutation with phases:

    P |b> = phase(b) |b ^ xmask>

so exp(i phi P) |psi> = cos(phi) |psi> + i sin(phi) (P |psi>) costs one
gather + two axpys on the dense amplitude vector - no per-gate tensor
reshapes, no SVDs.  For the small embedded problems DMET produces
(4-6 orbitals, 8-12 qubits) this evaluates a VQE energy in well under a
millisecond, ~100x faster than the gate-by-gate simulators, while remaining
*numerically identical* to them (the Pauli factors within one excitation
commute, so operator order is immaterial); the test-suite asserts agreement
with both circuit simulators.

This is the ansatz-evaluation half of the shared Pauli-kernel layer; the
permutation+phase primitives themselves (:class:`PauliAction`,
:class:`CompiledObservable`) live in
:mod:`repro.simulators.pauli_kernels` where every dense backend shares
them.  It registers in :mod:`repro.backends` as the ``fast`` backend; the
paper-faithful MPS pipeline in :mod:`repro.simulators` remains the measured
artifact in the benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.circuits.uccsd import UCCSDAnsatz
from repro.operators.pauli import QubitOperator
from repro.simulators.pauli_kernels import (  # noqa: F401  (PauliAction is
    CompiledObservable,                       # re-exported for back-compat)
    PauliAction,
    compile_observable,
)


class FastUCCEvaluator:
    """Energy/state evaluator for a UCCSD ansatz on a dense vector.

    Parameters
    ----------
    hamiltonian:
        Qubit Hamiltonian.
    ansatz:
        The UCCSD ansatz whose excitations define the evolution.
    max_qubits:
        Safety cap on the dense representation (default 16: 1 MB states).
    """

    def __init__(self, hamiltonian: QubitOperator, ansatz: UCCSDAnsatz, *,
                 max_qubits: int = 16):
        n = ansatz.n_qubits
        if n > max_qubits:
            raise ValidationError(
                f"{n} qubits exceed the fast evaluator's cap of {max_qubits}"
            )
        if not hamiltonian.is_hermitian():
            raise ValidationError("Hamiltonian must be hermitian")
        self.n_qubits = n
        self.ansatz = ansatz
        self.n_parameters = ansatz.n_parameters
        dim = 1 << n
        # Hartree-Fock reference in the ansatz's own encoding (JW: first
        # n_electrons qubits; BK: the Fenwick-encoded occupation parities)
        ref_index = 0
        for q in ansatz._reference_qubits():
            ref_index |= 1 << (n - 1 - q)
        self._reference = np.zeros(dim, dtype=complex)
        self._reference[ref_index] = 1.0
        # Excitation generators in closed form.  Within one excitation the
        # Pauli terms commute; terms sharing a flip mask combine into
        # A = i D X_m (D diagonal, X_m a basis permutation) whose square is
        # the real non-positive diagonal -W^2, so
        #     exp(theta A) = cos(theta W) + sin(theta W)/W * A
        # - one gather per mask group instead of one per Pauli string.
        self._factors: list[tuple[int, list]] = []
        for exc in ansatz.excitations:
            groups: dict[int, list] = {}
            for pt, c in exc.pauli_terms:
                groups.setdefault(pt.x, []).append((pt, c))
            compiled = []
            for xmask, members in groups.items():
                perm = PauliAction(members[0][0], n).perm
                diag = np.zeros(dim, dtype=complex)
                for pt, c in members:
                    action = PauliAction(pt, n)
                    diag += c * action.phase
                # A^2 = -D[j] D[j^m] = -|D|^2 (anti-hermiticity makes
                # D[j^m] = conj(D[j])), so W^2 = D * (D o perm)
                w2 = diag * diag[perm]
                if np.max(np.abs(w2.imag)) > 1e-10 or w2.real.min() < -1e-10:
                    raise ValidationError(
                        "excitation generator is not anti-hermitian in "
                        "closed form; cannot use the fast evaluator"
                    )
                w = np.sqrt(np.maximum(w2.real, 0.0))
                # W takes only a handful of distinct values (sums of a few
                # unit phases), so trig evaluates on a tiny table and is
                # broadcast back by one integer gather
                w_vals, inv = np.unique(np.round(w, 14), return_inverse=True)
                compiled.append((perm, diag, w_vals,
                                 inv.astype(np.int32)))
            self._factors.append((exc.param_index, compiled))
        # Hamiltonian terms grouped by flip pattern: the shared
        # CompiledObservable kernel collapses all strings sharing an X/Y
        # mask into one complex diagonal + one gather (molecular
        # Hamiltonians compress ~7x)
        self._ham = CompiledObservable(hamiltonian, n)
        self.evaluations = 0

    # -- state preparation ----------------------------------------------------

    def state(self, theta: np.ndarray) -> np.ndarray:
        """|psi(theta)> as a dense vector (qubit 0 = MSB).

        Hot loop: one gather + three in-place passes per Pauli factor,
        reusing a scratch buffer to avoid per-factor allocations.
        """
        theta = np.asarray(theta, dtype=float)
        if theta.size < self.n_parameters:
            raise ValidationError(
                f"need {self.n_parameters} parameters, got {theta.size}"
            )
        psi = self._reference.copy()
        tmp = np.empty_like(psi)
        for idx, compiled in self._factors:
            t = theta[idx]
            if t == 0.0:
                continue
            for perm, diag, w_vals, inv in compiled:
                # exp(t * i D X_m) psi, elementwise in the W spectrum
                np.take(psi, perm, out=tmp)
                tmp *= diag
                tw = t * w_vals
                ratio_tab = 1j * np.where(w_vals > 1e-30,
                                          np.sin(tw)
                                          / np.where(w_vals > 1e-30,
                                                     w_vals, 1.0),
                                          t)
                cos_tab = np.cos(tw)
                psi *= cos_tab[inv]
                tmp *= ratio_tab[inv]
                psi += tmp
        return psi

    # -- measurement -----------------------------------------------------------

    def energy(self, theta: np.ndarray) -> float:
        """<H> at the given parameters via the compiled observable."""
        self.evaluations += 1
        return self._ham.expectation(self.state(theta))

    __call__ = energy

    def final_state(self, theta: np.ndarray) -> "FastStateAdapter":
        """Adapter exposing ``expectation`` over |psi(theta)> (for RDMs)."""
        return FastStateAdapter(self, self.state(theta))

    def expectation_state(self, psi: np.ndarray, op: QubitOperator) -> float:
        """<psi| op |psi> through the shared compile cache (used for RDMs)."""
        return compile_observable(op, self.n_qubits).expectation(psi)


class FastStateAdapter:
    """Duck-typed 'simulator' over a fixed dense state.

    Exposes the ``expectation`` method that
    :func:`repro.vqe.rdm.measure_rdms` needs, backed by the fast Pauli
    actions of a :class:`FastUCCEvaluator`.
    """

    def __init__(self, evaluator: FastUCCEvaluator, psi: np.ndarray):
        self._evaluator = evaluator
        self._psi = psi

    def expectation(self, op: QubitOperator) -> float:
        return self._evaluator.expectation_state(self._psi, op)
