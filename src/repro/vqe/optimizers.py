"""Classical optimizers driving the VQE loop.

Three families, all consuming a plain ``f(theta) -> float`` callable:

* :func:`minimize_scipy` - bridge to scipy.optimize (COBYLA / L-BFGS-B /
  Nelder-Mead), the workhorse for exact noiseless simulation;
* :func:`minimize_spsa` - simultaneous perturbation stochastic approximation,
  the measurement-frugal optimizer relevant on hardware (2 evaluations per
  step regardless of parameter count);
* :func:`minimize_adam` - Adam on an injected gradient callable (any
  source from :mod:`repro.vqe.gradients`: adjoint, parameter-shift,
  finite differences), falling back to its historic built-in central
  finite differences when none is given.

Gradient-capable entry points (:func:`minimize_adam` and the scipy
gradient methods through ``gradient=``) treat the callable as an opaque
``g(theta) -> ndarray``: the optimizer trajectory depends only on the
gradient *values*, never on how they were produced - the property the
source-parity regression test pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy import optimize as sopt

from repro.common.errors import ValidationError
from repro.common.rng import default_rng


@dataclass
class OptimizationResult:
    """Outcome of a classical minimization run."""

    x: np.ndarray
    fun: float
    n_evaluations: int
    n_iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)
    message: str = ""


#: scipy methods that consume an analytic jacobian when one is supplied
SCIPY_GRADIENT_METHODS = ("L-BFGS-B", "BFGS", "SLSQP", "CG")


def minimize_scipy(f: Callable[[np.ndarray], float], x0: np.ndarray, *,
                   method: str = "COBYLA", tolerance: float = 1e-8,
                   max_iterations: int = 2000,
                   gradient: Callable[[np.ndarray], np.ndarray] | None = None
                   ) -> OptimizationResult:
    """Minimize with scipy; records an energy history via a wrapper.

    ``gradient`` (any :mod:`repro.vqe.gradients` source) is passed as the
    analytic jacobian to the gradient-based methods
    (:data:`SCIPY_GRADIENT_METHODS`); gradient-free methods reject it
    rather than silently ignoring an expensive callable.
    """
    history: list[float] = []
    calls = [0]

    def wrapped(x: np.ndarray) -> float:
        calls[0] += 1
        val = f(np.asarray(x, dtype=float))
        history.append(val)
        return val

    jac = None
    if gradient is not None:
        if method.upper() not in SCIPY_GRADIENT_METHODS:
            raise ValidationError(
                f"scipy method {method!r} is gradient-free; gradient "
                f"sources apply to {SCIPY_GRADIENT_METHODS}"
            )

        def jac(x: np.ndarray) -> np.ndarray:
            return np.asarray(gradient(np.asarray(x, dtype=float)),
                              dtype=float)

    res = sopt.minimize(wrapped, np.asarray(x0, dtype=float), method=method,
                        tol=tolerance, jac=jac,
                        options={"maxiter": max_iterations})
    return OptimizationResult(
        x=np.asarray(res.x, dtype=float),
        fun=float(res.fun),
        n_evaluations=calls[0],
        n_iterations=int(getattr(res, "nit", calls[0])),
        converged=bool(res.success),
        history=history,
        message=str(res.message),
    )


def minimize_spsa(f: Callable[[np.ndarray], float], x0: np.ndarray, *,
                  max_iterations: int = 300, a: float = 0.1, c: float = 0.1,
                  alpha: float = 0.602, gamma: float = 0.101,
                  seed: int | None = None,
                  tolerance: float = 0.0,
                  checkpoint: Callable[[dict], None] | None = None,
                  resume_state: dict | None = None) -> OptimizationResult:
    """SPSA with the standard gain sequences a_k = a/(k+1)^alpha etc.

    ``checkpoint`` (if given) is called after every iteration with the
    complete optimizer state - including the PCG64 bit-generator state,
    so the stochastic perturbation stream survives a restart;
    ``resume_state`` restores such a snapshot and continues the exact
    trajectory the uninterrupted run would have taken (bitwise).
    """
    rng = default_rng(seed)
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 1:
        raise ValidationError("x0 must be a vector")
    history: list[float] = []
    evals = 0
    best_x, best_f = x.copy(), np.inf
    start_k = 0
    if resume_state is not None:
        x = np.asarray(resume_state["x"], dtype=float).copy()
        best_x = np.asarray(resume_state["best_x"], dtype=float).copy()
        best_f = float(resume_state["best_f"])
        history = [float(v) for v in resume_state["history"]]
        evals = int(resume_state["n_evaluations"])
        start_k = int(resume_state["iteration"])
        rng.bit_generator.state = resume_state["rng_state"]
    for k in range(start_k, max_iterations):
        ak = a / (k + 1) ** alpha
        ck = c / (k + 1) ** gamma
        delta = rng.choice([-1.0, 1.0], size=x.size)
        fp = f(x + ck * delta)
        fm = f(x - ck * delta)
        evals += 2
        ghat = (fp - fm) / (2.0 * ck) * delta
        x = x - ak * ghat
        cur = min(fp, fm)
        history.append(cur)
        if cur < best_f:
            best_f, best_x = cur, x.copy()
        if checkpoint is not None:
            checkpoint({
                "iteration": k + 1, "x": x, "best_x": best_x,
                "best_f": best_f, "history": list(history),
                "n_evaluations": evals,
                "rng_state": rng.bit_generator.state,
            })
        if tolerance > 0.0 and k > 10:
            recent = history[-5:]
            if max(recent) - min(recent) < tolerance:
                break
    final = f(best_x)
    evals += 1
    return OptimizationResult(
        x=best_x, fun=float(final), n_evaluations=evals,
        n_iterations=len(history), converged=True, history=history,
        message="SPSA budget exhausted or plateaued",
    )


def minimize_adam(f: Callable[[np.ndarray], float], x0: np.ndarray, *,
                  max_iterations: int = 200, learning_rate: float = 0.05,
                  beta1: float = 0.9, beta2: float = 0.999,
                  eps: float = 1e-8, fd_step: float = 1e-4,
                  tolerance: float = 1e-8,
                  gradient: Callable[[np.ndarray], np.ndarray] | None = None,
                  checkpoint: Callable[[dict], None] | None = None,
                  resume_state: dict | None = None) -> OptimizationResult:
    """Adam on an injected gradient callable.

    ``gradient(theta) -> ndarray`` may come from any source
    (:mod:`repro.vqe.gradients`); when omitted the historic built-in
    central finite differences are used (2p energy evaluations per step,
    counted in ``n_evaluations``).  The update sequence is a pure function
    of the gradient values, so value-identical sources yield bitwise
    identical trajectories.

    ``checkpoint`` (if given) is called after every completed iteration
    with the full optimizer state (theta, first/second moments, energy
    history, evaluation count); ``resume_state`` restores such a snapshot
    and continues at the next iteration, reproducing the uninterrupted
    trajectory bitwise (the moments and theta round-trip byte-exactly
    through :mod:`repro.serve.checkpoint`).
    """
    x = np.asarray(x0, dtype=float).copy()
    m = np.zeros_like(x)
    v = np.zeros_like(x)
    history: list[float] = []
    evals = 0
    counted = [0]
    if gradient is None:
        def gradient(xc: np.ndarray) -> np.ndarray:
            g = np.zeros_like(xc)
            for i in range(xc.size):
                e = np.zeros_like(xc)
                e[i] = fd_step
                g[i] = (f(xc + e) - f(xc - e)) / (2.0 * fd_step)
                counted[0] += 2
            return g
    prev = np.inf
    start_k = 1
    if resume_state is not None:
        x = np.asarray(resume_state["x"], dtype=float).copy()
        m = np.asarray(resume_state["m"], dtype=float).copy()
        v = np.asarray(resume_state["v"], dtype=float).copy()
        history = [float(val) for val in resume_state["history"]]
        evals = int(resume_state["n_evaluations"])
        prev = float(resume_state["prev"])
        start_k = int(resume_state["iteration"]) + 1
    for k in range(start_k, max_iterations + 1):
        g = np.asarray(gradient(x), dtype=float)
        evals += counted[0]
        counted[0] = 0
        m = beta1 * m + (1 - beta1) * g
        v = beta2 * v + (1 - beta2) * g * g
        mhat = m / (1 - beta1 ** k)
        vhat = v / (1 - beta2 ** k)
        x = x - learning_rate * mhat / (np.sqrt(vhat) + eps)
        cur = f(x)
        evals += 1
        history.append(cur)
        if abs(prev - cur) < tolerance:
            return OptimizationResult(
                x=x, fun=float(cur), n_evaluations=evals,
                n_iterations=k, converged=True, history=history,
                message="converged on energy change",
            )
        prev = cur
        if checkpoint is not None:
            checkpoint({
                "iteration": k, "x": x, "m": m, "v": v, "prev": prev,
                "history": list(history), "n_evaluations": evals,
            })
    return OptimizationResult(
        x=x, fun=float(history[-1]), n_evaluations=evals,
        n_iterations=max_iterations, converged=False, history=history,
        message="iteration budget exhausted",
    )
