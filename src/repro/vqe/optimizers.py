"""Classical optimizers driving the VQE loop.

Three families, all consuming a plain ``f(theta) -> float`` callable:

* :func:`minimize_scipy` - bridge to scipy.optimize (COBYLA / L-BFGS-B /
  Nelder-Mead), the workhorse for exact noiseless simulation;
* :func:`minimize_spsa` - simultaneous perturbation stochastic approximation,
  the measurement-frugal optimizer relevant on hardware (2 evaluations per
  step regardless of parameter count);
* :func:`minimize_adam` - Adam on central finite-difference gradients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy import optimize as sopt

from repro.common.errors import ValidationError
from repro.common.rng import default_rng


@dataclass
class OptimizationResult:
    """Outcome of a classical minimization run."""

    x: np.ndarray
    fun: float
    n_evaluations: int
    n_iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)
    message: str = ""


def minimize_scipy(f: Callable[[np.ndarray], float], x0: np.ndarray, *,
                   method: str = "COBYLA", tolerance: float = 1e-8,
                   max_iterations: int = 2000) -> OptimizationResult:
    """Minimize with scipy; records an energy history via a wrapper."""
    history: list[float] = []
    calls = [0]

    def wrapped(x: np.ndarray) -> float:
        calls[0] += 1
        val = f(np.asarray(x, dtype=float))
        history.append(val)
        return val

    res = sopt.minimize(wrapped, np.asarray(x0, dtype=float), method=method,
                        tol=tolerance,
                        options={"maxiter": max_iterations})
    return OptimizationResult(
        x=np.asarray(res.x, dtype=float),
        fun=float(res.fun),
        n_evaluations=calls[0],
        n_iterations=int(getattr(res, "nit", calls[0])),
        converged=bool(res.success),
        history=history,
        message=str(res.message),
    )


def minimize_spsa(f: Callable[[np.ndarray], float], x0: np.ndarray, *,
                  max_iterations: int = 300, a: float = 0.1, c: float = 0.1,
                  alpha: float = 0.602, gamma: float = 0.101,
                  seed: int | None = None,
                  tolerance: float = 0.0) -> OptimizationResult:
    """SPSA with the standard gain sequences a_k = a/(k+1)^alpha etc."""
    rng = default_rng(seed)
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 1:
        raise ValidationError("x0 must be a vector")
    history: list[float] = []
    evals = 0
    best_x, best_f = x.copy(), np.inf
    for k in range(max_iterations):
        ak = a / (k + 1) ** alpha
        ck = c / (k + 1) ** gamma
        delta = rng.choice([-1.0, 1.0], size=x.size)
        fp = f(x + ck * delta)
        fm = f(x - ck * delta)
        evals += 2
        ghat = (fp - fm) / (2.0 * ck) * delta
        x = x - ak * ghat
        cur = min(fp, fm)
        history.append(cur)
        if cur < best_f:
            best_f, best_x = cur, x.copy()
        if tolerance > 0.0 and k > 10:
            recent = history[-5:]
            if max(recent) - min(recent) < tolerance:
                break
    final = f(best_x)
    evals += 1
    return OptimizationResult(
        x=best_x, fun=float(final), n_evaluations=evals,
        n_iterations=len(history), converged=True, history=history,
        message="SPSA budget exhausted or plateaued",
    )


def minimize_adam(f: Callable[[np.ndarray], float], x0: np.ndarray, *,
                  max_iterations: int = 200, learning_rate: float = 0.05,
                  beta1: float = 0.9, beta2: float = 0.999,
                  eps: float = 1e-8, fd_step: float = 1e-4,
                  tolerance: float = 1e-8) -> OptimizationResult:
    """Adam on central finite-difference gradients (2p evals per step)."""
    x = np.asarray(x0, dtype=float).copy()
    m = np.zeros_like(x)
    v = np.zeros_like(x)
    history: list[float] = []
    evals = 0
    prev = np.inf
    for k in range(1, max_iterations + 1):
        g = np.zeros_like(x)
        for i in range(x.size):
            e = np.zeros_like(x)
            e[i] = fd_step
            g[i] = (f(x + e) - f(x - e)) / (2.0 * fd_step)
            evals += 2
        m = beta1 * m + (1 - beta1) * g
        v = beta2 * v + (1 - beta2) * g * g
        mhat = m / (1 - beta1 ** k)
        vhat = v / (1 - beta2 ** k)
        x = x - learning_rate * mhat / (np.sqrt(vhat) + eps)
        cur = f(x)
        evals += 1
        history.append(cur)
        if abs(prev - cur) < tolerance:
            return OptimizationResult(
                x=x, fun=float(cur), n_evaluations=evals,
                n_iterations=k, converged=True, history=history,
                message="converged on energy change",
            )
        prev = cur
    return OptimizationResult(
        x=x, fun=float(history[-1]), n_evaluations=evals,
        n_iterations=max_iterations, converged=False, history=history,
        message="iteration budget exhausted",
    )
