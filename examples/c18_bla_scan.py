#!/usr/bin/env python
"""Bond-length-alternation scan of cyclo[18]carbon (paper Fig. 7b).

The paper scans the C18 energy against the bond-length alternation (BLA)
and finds the alternated (polyynic) structure lower than the cumulenic one,
in agreement with experiment.  The ab initio cc-pVDZ calculation is beyond
a laptop, so this example runs the documented substitution (DESIGN.md #3):
a PPP/SSH model of the C18 pi system with a sigma-bond elastic term, solved
with CCSD and DMET(-VQE), which exhibits the same double-well physics.

Usage:  python examples/c18_bla_scan.py [n_sites] [n_points] [--dmet]
"""

import sys

import numpy as np

from repro.chem.ccsd import CCSDSolver
from repro.chem.lattice import ppp_carbon_ring
from repro.chem.mo import MOIntegrals
from repro.dmet.solvers import orthonormal_rhf_density
from repro.q2chem import Q2Chemistry


def canonical_mo(lat):
    """Rotate the site-basis lattice Hamiltonian to canonical orbitals."""
    _, c = orthonormal_rhf_density(lat.h1, lat.h2, lat.n_electrons)
    h1 = c.T @ lat.h1 @ c
    g = np.einsum("pqrs,pi,qj,rk,sl->ijkl", lat.h2, c, c, c, c,
                  optimize=True)
    return MOIntegrals(h1=h1, h2=g, constant=lat.constant,
                       n_electrons=lat.n_electrons)


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    use_dmet = "--dmet" in sys.argv
    n_sites = int(args[0]) if args else 18
    n_points = int(args[1]) if len(args) > 1 else 7

    blas = np.linspace(0.0, 0.25, n_points)
    print(f"C{n_sites} pi-system (PPP/SSH + sigma elastic) BLA scan")
    header = f"{'BLA(A)':>8} {'RHF':>12} {'CCSD':>12}"
    if use_dmet:
        header += f" {'DMET-VQE':>12}"
    print(header)

    rows = []
    for bla in blas:
        lat = ppp_carbon_ring(n_sites, bla=float(bla))
        mo = canonical_mo(lat)
        job = Q2Chemistry.from_lattice(lat)
        e_hf = job.hartree_fock_energy()
        e_ccsd = CCSDSolver(mo, level_shift=0.0).run().energy
        row = [bla, e_hf, e_ccsd]
        if use_dmet:
            frags = [[i, i + 1] for i in range(0, n_sites, 2)]
            res = job.dmet_energy(fragments=frags, solver="vqe-fast",
                                  all_fragments_equivalent=True,
                                  vqe_tolerance=1e-7, mu_tolerance=1e-3)
            row.append(res.energy)
        rows.append(row)
        print(" ".join(f"{v:12.6f}" if i else f"{v:8.3f}"
                       for i, v in enumerate(row)))

    ccsd = np.array([r[2] for r in rows])
    kmin = int(np.argmin(ccsd))
    print(f"\nCCSD minimum at BLA = {blas[kmin]:.3f} A "
          f"({'alternated' if blas[kmin] > 0.02 else 'cumulenic'} structure)")
    print("(paper Fig. 7b: the bond-length-alternated structure is lower)")


if __name__ == "__main__":
    main()
