#!/usr/bin/env python
"""Protein-ligand binding energies with the frozen-field model (paper Sec. V).

The paper computes E_b = E(ligand in protein) - E(ligand) for 13 ligands
against the SARS-CoV-2 main protease under a "frozen protein" approximation,
then ranks the binders.  PDB 6lu7 and the DFT-optimized drug geometries are
not available offline, so this example runs the documented substitution
(DESIGN.md #5): a library of small synthetic "ligands" placed in a frozen
point-charge pocket standing in for the protease active site, all energies
computed through the identical DMET pipeline.  The printed table mirrors the
paper's screen: a clear ranking emerges, with the strongest binder being the
ligand whose charge distribution is most complementary to the pocket.

Usage:  python examples/ligand_binding.py [--method hf|fci|dmet-fci|dmet-vqe-fast]
"""

import sys

from repro.common.constants import HARTREE_TO_EV
from repro.chem.geometry import (
    Molecule,
    PointCharge,
    h2,
    hydrogen_chain,
    hydrogen_ring,
    lih,
    water,
)
from repro.q2chem import binding_energy


def pocket():
    """A frozen 'active site': charges arranged like a binding cleft.

    Positive charges above the ligand plane mimic H-bond donors; the
    negative ring mimics the surrounding backbone carbonyls.
    """
    charges = [
        PointCharge(+0.40, (0.0, 4.0, 0.7)),
        PointCharge(+0.40, (1.5, 4.2, 0.0)),
        PointCharge(+0.25, (-1.5, 4.2, 0.0)),
        PointCharge(-0.30, (3.5, 5.5, 0.0)),
        PointCharge(-0.30, (-3.5, 5.5, 0.0)),
        PointCharge(-0.20, (0.0, 7.0, 0.7)),
    ]
    return charges


def ligand_library() -> list[Molecule]:
    """13 ligands, as in the paper's screen."""
    ligands = [
        h2(0.70), h2(0.7414), h2(0.80),
        lih(1.55), lih(1.5949), lih(1.65),
        water(0.9572, 104.52), water(0.98, 102.0),
        hydrogen_chain(4, 0.9), hydrogen_chain(4, 1.1),
        hydrogen_ring(4, 1.0), hydrogen_ring(6, 1.0),
        hydrogen_chain(6, 1.0),
    ]
    names = [
        "H2(0.70)", "H2(eq)", "H2(0.80)",
        "LiH(1.55)", "LiH(eq)", "LiH(1.65)",
        "H2O(eq)", "H2O(dist)",
        "H4-chain(0.9)", "H4-chain(1.1)",
        "H4-ring", "H6-ring",
        "H6-chain",
    ]
    for m, n in zip(ligands, names):
        m.name = n
    return ligands


def main() -> None:
    method = "hf"
    for a in sys.argv[1:]:
        if a.startswith("--method"):
            method = a.split("=", 1)[1] if "=" in a else "hf"
    charges = pocket()
    print(f"Frozen-field ligand screen ({method}), pocket of "
          f"{len(charges)} charges")
    print(f"{'ligand':>14} {'E_free(Ha)':>13} {'E_bound(Ha)':>13} "
          f"{'E_b(eV)':>9}")
    results = []
    for mol in ligand_library():
        out = binding_energy(mol, charges, method=method,
                             fit_chemical_potential=False)
        eb_ev = out["binding_energy"] * HARTREE_TO_EV
        results.append((mol.name, out["e_free"], out["e_bound"], eb_ev))
        print(f"{mol.name:>14} {out['e_free']:13.6f} "
              f"{out['e_bound']:13.6f} {eb_ev:9.4f}")

    results.sort(key=lambda r: r[3])
    print("\nranking (most negative E_b binds best):")
    for rank, (name, _, _, eb) in enumerate(results[:5], 1):
        print(f"  {rank}. {name:<14} E_b = {eb:+.4f} eV")
    print("\n(paper Sec. V ranks 13 ligands against the Mpro pocket and "
          "finds Nirmatrelvir at -7.3 eV beats Candesartan cilexetil at "
          "-6.8 eV; the reproduced quantity is the ranking itself)")


if __name__ == "__main__":
    main()
