#!/usr/bin/env python
"""Quickstart: H2 ground state four ways.

Runs restricted Hartree-Fock, exact FCI, CCSD and an MPS-based UCCSD-VQE on
the hydrogen molecule in STO-3G, printing the energies side by side - the
30-second tour of the whole pipeline (integrals -> SCF -> qubit Hamiltonian
-> parametric circuit -> MPS simulation -> optimizer).

Usage:  python examples/quickstart.py [bond_length_angstrom]
"""

import sys

from repro.chem.geometry import h2
from repro.q2chem import Q2Chemistry


def main() -> None:
    bond = float(sys.argv[1]) if len(sys.argv) > 1 else 0.7414
    print(f"H2 @ {bond:.4f} A, STO-3G")
    print("-" * 46)

    job = Q2Chemistry.from_molecule(h2(bond), basis="sto-3g")

    e_hf = job.hartree_fock_energy()
    print(f"RHF      : {e_hf:+.8f} Ha")

    e_ccsd = job.ccsd_energy()
    print(f"CCSD     : {e_ccsd:+.8f} Ha")

    e_fci = job.fci_energy()
    print(f"FCI      : {e_fci:+.8f} Ha   (exact in this basis)")

    ham = job.qubit_hamiltonian()
    print(f"\nqubit Hamiltonian: {ham.n_qubits()} qubits, "
          f"{len(ham)} Pauli strings (paper Fig. 5: 15 for H2)")

    res = job.vqe_energy(simulator="mps", max_bond_dimension=16)
    print(f"\nMPS-VQE  : {res.energy:+.8f} Ha "
          f"({res.n_evaluations} circuit evaluations)")
    print(f"VQE-FCI error: {abs(res.energy - e_fci):.2e} Ha "
          f"(chemical accuracy = 1.6e-3)")


if __name__ == "__main__":
    main()
