#!/usr/bin/env python
"""H2 dissociation: where mean field fails and VQE does not.

Scans the H2 potential curve from equilibrium to dissociation.  Restricted
Hartree-Fock overbinds catastrophically at stretch (the classic static-
correlation failure); UCCSD-VQE tracks FCI everywhere.  This is the
textbook motivation for quantum computational chemistry that the paper's
introduction leans on.

Usage:  python examples/h2_dissociation.py [n_points]
"""

import sys

from repro.chem.geometry import h2
from repro.q2chem import Q2Chemistry


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    bonds = [0.5 + 2.5 * i / (n_points - 1) for i in range(n_points)]

    print("H2/STO-3G dissociation curve")
    print(f"{'r(A)':>6} {'RHF':>12} {'FCI':>12} {'VQE':>12} "
          f"{'RHF err':>10} {'VQE err':>10}")
    for r in bonds:
        job = Q2Chemistry.from_molecule(h2(r))
        e_hf = job.hartree_fock_energy()
        e_fci = job.fci_energy()
        e_vqe = job.vqe_energy(simulator="fast").energy
        print(f"{r:6.2f} {e_hf:12.6f} {e_fci:12.6f} {e_vqe:12.6f} "
              f"{e_hf - e_fci:10.6f} {e_vqe - e_fci:10.2e}")
    print("\nRHF's error grows without bound at dissociation "
          "(static correlation); UCCSD-VQE stays exact for 2 electrons.")


if __name__ == "__main__":
    main()
