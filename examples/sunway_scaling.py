#!/usr/bin/env python
"""Replay of the paper's 20-million-core scaling runs (Figs. 12-13).

The decomposition (DMET fragments -> 2048-process sub-groups -> LPT-balanced
Pauli-string circuits) and the communicator traffic run for real; only the
clock comes from the SW26010Pro machine model, with kernel costs calibrated
from this machine's measured MPS timings.  See DESIGN.md substitution #1.

Usage:  python examples/sunway_scaling.py [--calibrate]
"""

import sys

from repro.parallel.perfmodel import CircuitCostModel, ScalingExperiment
from repro.parallel.threelevel import ThreeLevelDriver


def main() -> None:
    if "--calibrate" in sys.argv:
        print("calibrating kernel cost model against the local MPS "
              "simulator ...")
        cost = CircuitCostModel.calibrate(bond_dimension=32,
                                          qubit_sizes=(8, 12, 16))
        print(f"  k_gate = {cost.k_gate:.3e} s/D^3, "
              f"overhead = {cost.overhead:.3e} s\n")
        exp = ScalingExperiment(cost_model=cost)
    else:
        exp = ScalingExperiment()

    print("STRONG SCALING - H1280 chain, 640 fragments, 2048 procs/group "
          "(paper Fig. 12)")
    print(f"{'processes':>10} {'cores':>12} {'waves':>6} {'time(s)':>9} "
          f"{'speedup':>8} {'eff':>6}")
    for p in exp.strong_scaling():
        print(f"{p.n_processes:>10,} {p.n_cores:>12,} {p.n_waves:>6} "
              f"{p.time_s:>9.3f} {p.speedup:>8.2f} "
              f"{p.efficiency * 100:>5.1f}%")
    print("(paper: 30x speedup, >=92% efficiency at 327,680 processes)\n")

    print("WEAK SCALING - chain grows with the machine (paper Fig. 13)")
    print(f"{'processes':>10} {'cores':>12} {'atoms':>6} {'time(s)':>9} "
          f"{'eff':>6}")
    for (atoms, _), p in zip(((40, 0), (80, 0), (320, 0), (1280, 0)),
                             exp.weak_scaling()):
        print(f"{p.n_processes:>10,} {p.n_cores:>12,} "
              f"{p.n_fragments * 2:>6} {p.time_s:>9.3f} "
              f"{p.efficiency * 100:>5.1f}%")
    print("(paper: ~92% weak-scaling efficiency at 21,299,200 cores)\n")

    print("COMMUNICATION PROFILE - one simulated sub-group iteration")
    drv = ThreeLevelDriver(processes_per_group=2048)
    rep = drv.simulate(n_fragments=5, n_processes=10_240, n_iterations=1)
    print(f"  bytes/process/iteration : {rep.bytes_per_process_per_iteration:.0f}"
          f"   (paper: ~15.6 KB incl. runtime overheads)")
    print(f"  comm share of makespan  : "
          f"{(rep.breakdown['bcast_s'] + rep.breakdown['reduce_s']) / rep.makespan_s * 100:.3f}%"
          f"   (paper: <0.001 s per iteration)")


if __name__ == "__main__":
    main()
