#!/usr/bin/env python
"""DMET-MPS-VQE on hydrogen rings: the paper's Fig. 7(a) workload.

Scans the potential energy curve of an H_n ring, comparing

* full FCI (exact, for validation),
* DMET with exact fragment solvers,
* DMET with UCCSD-VQE fragment solvers (the paper's DMET-MPS-VQE),

with two-atom fragments, exactly as in the paper ("the hydrogen atoms are
divided into fragments with two atoms").  Relative errors stay inside the
paper's <0.5% band.

Usage:  python examples/hydrogen_ring_dmet.py [n_atoms] [n_points]
"""

import sys

from repro.chem.geometry import hydrogen_ring
from repro.q2chem import Q2Chemistry


def main() -> None:
    n_atoms = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    n_points = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    bonds = [0.7 + 0.15 * i for i in range(n_points)]
    print(f"H{n_atoms} ring potential curve, STO-3G, 2-atom DMET fragments")
    print(f"{'r(A)':>6} {'FCI':>14} {'DMET-FCI':>14} {'DMET-VQE':>14} "
          f"{'err%':>7}")
    for r in bonds:
        job = Q2Chemistry.from_molecule(hydrogen_ring(n_atoms, r))
        e_fci = job.fci_energy()
        dmet_fci = job.dmet_energy(atoms_per_group=2, solver="fci",
                                   all_fragments_equivalent=True)
        dmet_vqe = job.dmet_energy(atoms_per_group=2, solver="vqe-fast",
                                   all_fragments_equivalent=True,
                                   vqe_tolerance=1e-9)
        rel = abs((dmet_vqe.energy - e_fci) / e_fci) * 100
        print(f"{r:6.2f} {e_fci:14.6f} {dmet_fci.energy:14.6f} "
              f"{dmet_vqe.energy:14.6f} {rel:7.3f}")
    print("\n(paper Fig. 7a: DMET-MPS-VQE tracks FCI within 0.5%)")


if __name__ == "__main__":
    main()
