"""Shared helpers for the per-figure benchmark harness.

Every file in this directory regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 3 for the index).  Benchmarks print the
same rows/series the paper reports, annotated with the paper's values; the
assertions check the reproduced *shape* (orderings, crossovers, approximate
factors), not Sunway-absolute numbers.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest


def print_table(title: str, headers: list[str], rows: list[list],
                paper_note: str = "") -> None:
    """Uniform table printer for the benchmark reports."""
    print(f"\n=== {title} ===")
    widths = [max(len(h), 12) for h in headers]
    print("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        cells = []
        for v, w in zip(row, widths):
            if isinstance(v, float):
                cells.append(f"{v:.6g}".rjust(w))
            else:
                cells.append(str(v).rjust(w))
        print("  ".join(cells))
    if paper_note:
        print(f"[paper] {paper_note}")


@pytest.fixture(scope="session")
def h2_mo():
    from repro.chem import geometry
    from repro.chem.scf import RHF
    from repro.chem import mo as momod

    rhf = RHF(geometry.h2(0.7414), "sto-3g")
    res = rhf.run()
    momod.attach_eri(res, rhf.engine.eri())
    return momod.from_scf(res), res


@pytest.fixture(scope="session")
def lih_mo():
    from repro.chem import geometry
    from repro.chem.scf import RHF
    from repro.chem import mo as momod

    rhf = RHF(geometry.lih(), "sto-3g")
    res = rhf.run()
    momod.attach_eri(res, rhf.engine.eri())
    return momod.from_scf(res), res


@pytest.fixture(scope="session")
def water_mo():
    from repro.chem import geometry
    from repro.chem.scf import RHF
    from repro.chem import mo as momod

    rhf = RHF(geometry.water(), "sto-3g")
    res = rhf.run()
    momod.attach_eri(res, rhf.engine.eri())
    return momod.from_scf(res), res
