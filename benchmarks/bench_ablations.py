"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but measurements justifying its engineering:

1. Hastings update (Eq. 10) vs the Vidal inverse-lambda update - the paper
   chose Eq. 10 so that "the algorithm would be numerically more stable";
2. gate fusion on/off (Sec. III-A's absorption of single-qubit gates);
3. DMRG vs MPS-VQE at equal bond dimension (Sec. III-A's substitutability
   remark);
4. LPT vs static scheduling of Pauli-string circuits (Sec. III-C's
   "adapted dynamical load balancing").
"""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.common.rng import default_rng
from repro.common.timing import timed
from repro.circuits.hea import random_brick_circuit
from repro.simulators.mps import MPS
from repro.simulators.mps_circuit import MPSSimulator

from conftest import print_table


def _canonical_violation(mps: MPS) -> float:
    worst = 0.0
    for q in range(mps.n_qubits):
        b = mps.tensors[q]
        g = np.einsum("lir,mir->lm", b, b.conj())
        worst = max(worst, float(np.max(np.abs(g - np.eye(b.shape[0])))))
    return worst


def _weak_gate(seed: int, eps: float = 1e-4) -> np.ndarray:
    rng = default_rng(seed)
    h = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
    h = 0.5 * (h + h.conj().T)
    return expm(1j * eps * h)


def test_ablation_hastings_vs_vidal(benchmark):
    """Eq. 10 vs dividing by Schmidt values, on weakly entangled evolution.

    Weak entanglers leave tiny Schmidt values on every bond (the NISQ/VQE
    regime the paper targets); the inverse-lambda update amplifies roundoff
    catastrophically while the Hastings form stays canonical to machine
    precision.
    """
    n, layers = 8, 30
    gates = []
    s = 0
    for layer in range(layers):
        for q in range(layer % 2, n - 1, 2):
            gates.append((_weak_gate(s), q))
            s += 1

    def evolve(scheme):
        mps = MPS(n, cutoff=0.0, update_scheme=scheme)
        for u, q in gates:
            mps.apply_two_qubit(u, q, q + 1)
        return mps

    rows = []
    violations = {}
    for scheme in ("hastings", "vidal"):
        mps = evolve(scheme)
        v = _canonical_violation(mps)
        lmin = min(float(l.min()) for l in mps.lambdas[1:-1])
        violations[scheme] = v
        rows.append([scheme, v, lmin])

    benchmark.pedantic(lambda: evolve("hastings"), rounds=1, iterations=1)

    print_table(
        "Ablation 1: canonical-form violation after weak-entangler evolution",
        ["update scheme", "max |BB+ - I|", "min Schmidt value"],
        rows,
        "the paper keeps the right-canonical form via Eq. 10 'for one "
        "thing, the algorithm would be numerically more stable'",
    )
    assert violations["hastings"] < 1e-10
    assert violations["vidal"] > 1e3 * violations["hastings"]


def test_ablation_gate_fusion(benchmark):
    """Fusion on vs off for a rotation-heavy UCCSD-style circuit.

    Fusion shrinks the gate *count* 2-3x; its runtime effect depends on the
    simulator: on the statevector backend every absorbed single-qubit gate
    saves a full O(2^n) pass, while on the MPS (where single-qubit gates
    cost O(D^2) without an SVD) the win comes from the merged two-qubit
    runs.  Both effects are measured here.
    """
    from repro.circuits.uccsd import UCCSDAnsatz
    from repro.circuits.fusion import fuse_single_qubit_gates
    from repro.simulators.statevector import StatevectorSimulator

    ansatz = UCCSDAnsatz(5, 4)
    rng = default_rng(9)
    circ = ansatz.circuit().bind(0.1 * rng.standard_normal(
        ansatz.n_parameters))
    n = circ.n_qubits
    fused = fuse_single_qubit_gates(circ)

    t_sv_plain, _ = timed(lambda: StatevectorSimulator(n).run(circ),
                          repeat=2)
    t_sv_fused, _ = timed(lambda: StatevectorSimulator(n).run(fused),
                          repeat=2)

    benchmark(lambda: StatevectorSimulator(n).run(fused))
    print_table(
        "Ablation 2: gate fusion (UCCSD, 10 qubits)",
        ["quantity", "unfused", "fused", "ratio"],
        [["gate count", len(circ), len(fused), len(circ) / len(fused)],
         ["SV seconds", t_sv_plain, t_sv_fused, t_sv_plain / t_sv_fused]],
        "Sec. III-A: single-qubit gates 'can be absorbed into two-qubit "
        "gates using gate fusion'",
    )
    assert len(fused) < 0.6 * len(circ)
    assert t_sv_fused < t_sv_plain


def test_ablation_dmrg_vs_vqe(benchmark, h2_mo):
    """DMRG vs MPS-VQE at the same bond dimension (Sec. III-A remark)."""
    from repro.circuits.uccsd import UCCSDAnsatz
    from repro.operators.molecular import molecular_qubit_hamiltonian
    from repro.simulators.dmrg import DMRG
    from repro.vqe.vqe import VQE
    from repro.chem.fci import FCISolver

    mo, _ = h2_mo
    ham = molecular_qubit_hamiltonian(mo)
    e_fci = FCISolver(mo).solve().energy

    rows = []
    for d in (2, 4):
        t_vqe, r_vqe = timed(lambda: VQE(
            ham, UCCSDAnsatz(2, 2), simulator="mps",
            max_bond_dimension=d).run(), repeat=1)
        t_dmrg, r_dmrg = timed(lambda: DMRG(
            ham, 4, max_bond_dimension=d, n_electrons=2).run(seed=1),
            repeat=1)
        rows.append([d, r_vqe.energy - e_fci, t_vqe,
                     r_dmrg.energy - e_fci, t_dmrg])

    benchmark.pedantic(
        lambda: DMRG(ham, 4, max_bond_dimension=4, n_electrons=2).run(seed=1),
        rounds=1, iterations=1)

    print_table(
        "Ablation 3: DMRG vs MPS-VQE at equal bond dimension (H2)",
        ["D", "VQE err (Ha)", "VQE s", "DMRG err (Ha)", "DMRG s"],
        rows,
        "Sec. III-A: 'one may well substitute the VQE simulator by ... "
        "DMRG and a similar or even higher precision would be expected'",
    )
    for row in rows:
        assert row[3] <= row[1] + 1e-6  # DMRG at least as accurate


def test_ablation_jw_vs_bk_on_mps(benchmark):
    """Why the MPS pipeline uses Jordan-Wigner: contiguous supports.

    JW excitation strings have contiguous qubit support, so the CNOT
    staircases are already nearest-neighbour; Bravyi-Kitaev strings are
    lower weight but scattered, and SWAP routing for the linear MPS
    topology inflates the two-qubit gate count.
    """
    from repro.circuits.routing import route_to_nearest_neighbour
    from repro.circuits.uccsd import UCCSDAnsatz

    rows = []
    counts = {}
    for mapping in ("jw", "bk"):
        ansatz = UCCSDAnsatz(5, 4, mapping=mapping)
        circ = ansatz.circuit().bind(
            0.1 * default_rng(1).standard_normal(ansatz.n_parameters))
        routed = route_to_nearest_neighbour(circ)
        max_w = max(pt.weight for exc in ansatz.excitations
                    for pt, _ in exc.pauli_terms)
        rows.append([mapping, max_w, circ.n_two_qubit_gates(),
                     routed.n_two_qubit_gates()])
        counts[mapping] = routed.n_two_qubit_gates()

    benchmark.pedantic(
        lambda: route_to_nearest_neighbour(
            UCCSDAnsatz(5, 4, mapping="bk").circuit().bind(
                np.zeros(UCCSDAnsatz(5, 4, mapping="bk").n_parameters))),
        rounds=1, iterations=1)

    print_table(
        "Ablation 5: JW vs BK ansatz on a linear (MPS) topology",
        ["mapping", "max Pauli weight", "2q gates", "2q gates routed"],
        rows,
        "Sec. III-A: JW's Z-chains make UCCSD staircases nearest-"
        "neighbour, which is what the MPS simulator wants",
    )
    assert counts["jw"] < counts["bk"]


def test_ablation_scheduling(benchmark):
    """LPT vs static block scheduling of real Hamiltonian strings."""
    from repro.chem import geometry
    from repro.chem.scf import RHF
    from repro.chem import mo as momod
    from repro.operators.molecular import molecular_qubit_hamiltonian
    from repro.vqe.grouping import partition_pauli_terms, group_loads

    rhf = RHF(geometry.lih(), "sto-3g")
    res = rhf.run()
    momod.attach_eri(res, rhf.engine.eri())
    ham = molecular_qubit_hamiltonian(momod.from_scf(res))

    rows = []
    ratios = {}
    for strategy in ("block", "round_robin", "lpt"):
        loads = group_loads(partition_pauli_terms(ham, 32, strategy))
        imbalance = max(loads) / (sum(loads) / len(loads))
        rows.append([strategy, max(loads), imbalance])
        ratios[strategy] = imbalance

    benchmark.pedantic(
        lambda: partition_pauli_terms(ham, 32, "lpt"), rounds=3,
        iterations=1)

    print_table(
        "Ablation 4: Pauli-string scheduling (LiH Hamiltonian, 32 ranks)",
        ["strategy", "makespan (cost units)", "imbalance"],
        rows,
        "Sec. III-C: 'high parallel scalability with adapted dynamical "
        "load balancing algorithm'",
    )
    assert ratios["lpt"] <= ratios["block"]
    assert ratios["lpt"] < 1.05  # near-perfect balance