"""Sec. V: protein-ligand binding energies with the frozen-field model.

Paper result: E_b = E(ligand in protein) - E(ligand) for 13 ligands against
the SARS-CoV-2 main protease; Candesartan cilexetil binds best among the
screened drugs (-6.8 eV) until Nirmatrelvir (-7.3 eV) beats it.

Offline substitution (DESIGN.md #5): 13 synthetic ligands in a frozen
point-charge pocket.  The reproduced shape: a stable, method-consistent
ranking with a clear strongest binder, computed through the same
DMET/HF pipeline for both the free and the embedded ligand.
"""

import numpy as np
import pytest

from repro.common.constants import HARTREE_TO_EV
from repro.chem.geometry import (
    PointCharge,
    h2,
    hydrogen_chain,
    hydrogen_ring,
    lih,
    water,
)
from repro.q2chem import binding_energy

from conftest import print_table


def _pocket():
    return [
        PointCharge(+0.40, (0.0, 4.0, 0.7)),
        PointCharge(+0.40, (1.5, 4.2, 0.0)),
        PointCharge(+0.25, (-1.5, 4.2, 0.0)),
        PointCharge(-0.30, (3.5, 5.5, 0.0)),
        PointCharge(-0.30, (-3.5, 5.5, 0.0)),
        PointCharge(-0.20, (0.0, 7.0, 0.7)),
    ]


def _ligands():
    specs = [
        ("H2(0.70)", h2(0.70)), ("H2(eq)", h2(0.7414)),
        ("H2(0.80)", h2(0.80)),
        ("LiH(1.55)", lih(1.55)), ("LiH(eq)", lih(1.5949)),
        ("LiH(1.65)", lih(1.65)),
        ("H2O(eq)", water()), ("H2O(dist)", water(0.98, 102.0)),
        ("H4-chain(0.9)", hydrogen_chain(4, 0.9)),
        ("H4-chain(1.1)", hydrogen_chain(4, 1.1)),
        ("H4-ring", hydrogen_ring(4, 1.0)),
        ("H6-ring", hydrogen_ring(6, 1.0)),
        ("H6-chain", hydrogen_chain(6, 1.0)),
    ]
    return specs


def test_sec5_ligand_screen_hf(benchmark):
    """The 13-ligand screen at the mean-field level."""
    pocket = _pocket()
    results = []

    def screen_one(mol):
        return binding_energy(mol, pocket, method="hf")

    for name, mol in _ligands():
        out = screen_one(mol)
        results.append((name, out["binding_energy"] * HARTREE_TO_EV))

    benchmark.pedantic(lambda: screen_one(h2()), rounds=1, iterations=1)

    ranked = sorted(results, key=lambda r: r[1])
    rows = [[i + 1, name, eb] for i, (name, eb) in enumerate(ranked)]
    print_table(
        "Sec V: frozen-field binding energies, 13 ligands (HF)",
        ["rank", "ligand", "E_b (eV)"],
        rows,
        "paper: 13 ligands vs Mpro; best binder -7.3 eV (Nirmatrelvir); "
        "reproduced: a clear ranking with one strongest binder",
    )
    # a clear strongest binder exists and actually binds
    assert ranked[0][1] < 0.0
    assert ranked[0][1] < ranked[1][1] - 1e-4


def test_sec5_correlated_screen(benchmark):
    """Correlated (DMET-FCI) binding energies vs the mean-field screen.

    The paper's argument for quantum-mechanical screening is precisely that
    correlation changes binding predictions where mean field is unreliable;
    the H4 square (degenerate open shell, pathological for RHF) is our
    in-library example.  Asserted shape: the correlated screen produces a
    strict ranking with a genuine binder on top, agrees with HF in sign for
    the well-behaved closed-shell ligands, and visibly re-ranks the
    HF-pathological one.
    """
    pocket = _pocket()
    subset = [lig for lig in _ligands()
              if lig[0] in ("H2(eq)", "H2O(eq)", "H4-ring", "H6-ring")]

    def both_methods(mol):
        hf = binding_energy(mol, pocket, method="hf")["binding_energy"]
        corr = binding_energy(mol, pocket, method="dmet-fci",
                              atoms_per_group=2,
                              fit_chemical_potential=False)
        return hf, corr["binding_energy"]

    rows = []
    results = {}
    for name, mol in subset:
        hf, corr = both_methods(mol)
        rows.append([name, hf * HARTREE_TO_EV, corr * HARTREE_TO_EV])
        results[name] = (hf, corr)

    benchmark.pedantic(lambda: both_methods(h2()), rounds=1, iterations=1)

    print_table(
        "Sec V: HF vs DMET-FCI binding energies (subset)",
        ["ligand", "E_b HF (eV)", "E_b DMET-FCI (eV)"],
        rows,
        "correlation refines the screen; the RHF-pathological H4 square "
        "is re-ranked, the well-behaved ligands keep their sign",
    )
    corr_values = sorted(v[1] for v in results.values())
    assert corr_values[0] < 0.0                      # a real binder exists
    assert corr_values[0] < corr_values[1] - 1e-6    # strict winner
    for name in ("H2(eq)", "H2O(eq)"):
        hf, corr = results[name]
        assert np.sign(hf) == np.sign(corr)          # sign-stable ligands
    # correlation moves the pathological case by much more than the others
    shift = {n: abs(v[1] - v[0]) for n, v in results.items()}
    assert shift["H4-ring"] > shift["H2(eq)"]
