"""Batched vs per-term Pauli expectation on a molecular Hamiltonian.

The VQE loop (paper Sec. III-D, Fig. 4) evaluates every Pauli string of the
Hamiltonian at every optimizer iteration.  The per-term path contracts one
2x2 Pauli matrix per non-identity factor per term - O(terms x weight)
tensordots.  The shared kernel layer (`repro.simulators.pauli_kernels`)
compiles the operator once, grouping terms by X/Y flip mask into one complex
diagonal + one index gather per distinct mask - O(#masks) vector passes per
evaluation.  This benchmark measures both on an H2O/STO-3G-scale
Hamiltonian (14 qubits) and a 12-qubit frozen-core variant, asserts the
compiled path is at least 5x faster, and emits a JSON record alongside the
printed table.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.common.rng import default_rng
from repro.common.timing import timed
from repro.operators.molecular import molecular_qubit_hamiltonian
from repro.simulators.pauli_kernels import CompiledObservable
from repro.simulators.statevector import StatevectorSimulator

from conftest import print_table

RESULTS_PATH = Path(__file__).resolve().parent / "results" / \
    "expectation_batching.json"


def _random_state(n_qubits: int, seed: int = 0) -> np.ndarray:
    rng = default_rng(seed)
    psi = rng.standard_normal(1 << n_qubits) \
        + 1j * rng.standard_normal(1 << n_qubits)
    return psi / np.linalg.norm(psi)


def _measure_case(tag: str, mo) -> dict:
    ham = molecular_qubit_hamiltonian(mo)
    n = mo.n_qubits
    psi = _random_state(n, seed=7)
    sim = StatevectorSimulator(n)
    sim.set_state(psi)

    compiled = CompiledObservable(ham, n)
    per_term_s, e_loop = timed(lambda: sim.expectation_per_term(ham),
                               repeat=2)
    compile_s, _ = timed(lambda: CompiledObservable(ham, n))
    batched_s, e_batch = timed(lambda: compiled.expectation(psi), repeat=5)
    assert abs(e_loop - e_batch) < 1e-9, "batched path changed the physics"
    return {
        "case": tag,
        "n_qubits": n,
        "n_terms": len(ham),
        "n_mask_groups": compiled.n_groups,
        "per_term_seconds": per_term_s,
        "batched_seconds": batched_s,
        "compile_seconds": compile_s,
        "speedup": per_term_s / batched_s,
        "compression": len(ham) / max(1, compiled.n_groups),
    }


def test_batched_expectation_speedup(water_mo, benchmark):
    """Compiled-observable expectation >= 5x over the per-term loop."""
    from repro.chem import mo as momod

    mo14, scf = water_mo
    # frozen-core H2O: the 12-qubit variant of the same Hamiltonian
    mo12 = momod.from_scf(scf, frozen_core=1)
    results = [_measure_case("h2o_sto3g_14q", mo14),
               _measure_case("h2o_sto3g_fc_12q", mo12)]

    compiled = CompiledObservable(molecular_qubit_hamiltonian(mo12), 12)
    psi = _random_state(12, seed=7)
    benchmark(lambda: compiled.expectation(psi))

    rows = [[r["case"], r["n_qubits"], r["n_terms"], r["n_mask_groups"],
             r["per_term_seconds"], r["batched_seconds"],
             r["speedup"]] for r in results]
    print_table(
        "Batched CompiledObservable vs per-term expectation",
        ["case", "qubits", "terms", "masks", "per-term s", "batched s",
         "speedup"],
        rows,
        paper_note="terms sharing a flip mask collapse to one gather "
                   "(cf. Guo et al. arXiv:2211.07983 term batching)",
    )

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps({"results": results}, indent=2))

    for r in results:
        assert r["speedup"] >= 5.0, (
            f"{r['case']}: batched path only {r['speedup']:.1f}x faster"
        )


def test_obs_disabled_overhead(lih_mo):
    """Disabled `repro.obs` instruments cost <2% of a LiH energy eval.

    The instrumentation acceptance bar: with the metrics registry off (the
    default), every instrumented call site costs one attribute load plus a
    branch.  Wall-clock A/B runs of the full evaluation are too noisy to
    resolve a 2% budget, so this measures the unit cost of the disabled
    path directly, multiplies it by the number of instrumented events one
    LiH MPS-sweep energy evaluation actually reaches (read off the enabled
    counters, doubled for margin), and asserts the product stays under 2%
    of the evaluation's wall time.
    """
    from repro import obs
    from repro.circuits.uccsd import UCCSDAnsatz
    from repro.vqe.energy import EnergyEvaluator

    mo, _ = lih_mo
    ham = molecular_qubit_hamiltonian(mo)
    ansatz = UCCSDAnsatz(mo.n_orbitals, mo.n_electrons)
    evaluator = EnergyEvaluator(ham, ansatz.circuit(), simulator="mps",
                                measurement="sweep")
    theta = np.full(ansatz.n_parameters, 0.02)

    evaluator.energy(theta)  # warm the compile/plan caches first
    eval_s, _ = timed(lambda: evaluator.energy(theta), repeat=3)

    # count the instrumented events one evaluation reaches (metrics whose
    # value increments at least once per call site reached, so the sum
    # upper-bounds the number of disabled-path branches taken)
    with obs.collect() as reg:
        evaluator.energy(theta)
        snap = reg.snapshot()
    event_metrics = ("mps.svd", "mps.gate_1q", "mps.gate_2q",
                     "mps.truncation_events", "mps.routing_plan.requests",
                     "mps_measure.evaluations", "mps_measure.env_steps",
                     "mps_measure.gemm_calls")
    events = sum(slot["value"]
                 for name in event_metrics if name in snap
                 for slot in snap[name]["values"])
    assert events > 0, "instrumented evaluation recorded no events"

    # unit cost of the disabled path: a no-op Counter.inc on the shared
    # (disabled) registry, the most expensive form an instrument takes
    assert not obs.enabled()
    probe = obs.counter("bench.obs_noop_probe", "disabled-path unit cost")
    n_calls = 200_000

    def burst():
        for _ in range(n_calls):
            probe.inc()

    burst_s, _ = timed(burst, repeat=3)
    per_call_s = burst_s / n_calls
    overhead_s = 2.0 * events * per_call_s  # 2x margin on the event count
    fraction = overhead_s / eval_s

    print_table(
        "Disabled-instrumentation overhead on a LiH MPS-sweep energy eval",
        ["eval s", "events", "ns/no-op", "overhead s", "fraction"],
        [[eval_s, int(events), per_call_s * 1e9, overhead_s, fraction]],
        paper_note="acceptance: repro.obs disabled must cost <2% of the "
                   "evaluation (one branch per instrumented event)",
    )
    assert fraction < 0.02, (
        f"disabled obs overhead {fraction * 100:.2f}% exceeds the 2% "
        f"budget ({events:.0f} events x {per_call_s * 1e9:.0f} ns over "
        f"{eval_s:.3f} s)"
    )


def test_flight_recorder_overhead(lih_mo):
    """The always-on flight recorder costs <2% of an energy eval.

    The recorder stays enabled even with metrics and tracing fully
    disabled, so its budget is measured the same way as the disabled-obs
    branch: unit cost of one `FLIGHT.note()` (lock + tuple + bounded
    deque append, on a ring that is already full so every call also
    evicts) times a generous bound on the notes a single evaluation can
    reach.  Flight sites are coarse by design - dispatch, task begin/end,
    job/batch/checkpoint edges - so tens of events per evaluation is
    already a large over-estimate.
    """
    from repro import obs
    from repro.circuits.uccsd import UCCSDAnsatz
    from repro.obs.flight import FlightRecorder
    from repro.vqe.energy import EnergyEvaluator

    mo, _ = lih_mo
    ham = molecular_qubit_hamiltonian(mo)
    ansatz = UCCSDAnsatz(mo.n_orbitals, mo.n_electrons)
    evaluator = EnergyEvaluator(ham, ansatz.circuit(), simulator="mps",
                                measurement="sweep")
    theta = np.full(ansatz.n_parameters, 0.02)

    evaluator.energy(theta)  # warm the compile/plan caches first
    assert not obs.enabled()  # full obs disabled: recorder still on
    eval_s, _ = timed(lambda: evaluator.energy(theta), repeat=3)

    rec = FlightRecorder()  # default capacity, kept full below
    n_calls = 200_000
    for i in range(rec.capacity):
        rec.note("bench", "prefill")

    def burst():
        for _ in range(n_calls):
            rec.note("bench", "probe", value=1)

    burst_s, _ = timed(burst, repeat=3)
    per_note_s = burst_s / n_calls

    # bound: every coarse site (dispatch + per-chunk task begin/end +
    # job/batch edges) firing 64 times per evaluation, far above what the
    # instrumented sites can actually reach
    notes_per_eval = 64
    overhead_s = notes_per_eval * per_note_s
    fraction = overhead_s / eval_s

    print_table(
        "Flight-recorder overhead on a LiH MPS-sweep energy eval",
        ["eval s", "notes/eval", "ns/note", "overhead s", "fraction"],
        [[eval_s, notes_per_eval, per_note_s * 1e9, overhead_s, fraction]],
        paper_note="acceptance: the always-on flight ring must cost <2% "
                   "of the evaluation even with all other obs disabled",
    )
    assert fraction < 0.02, (
        f"flight recorder overhead {fraction * 100:.2f}% exceeds the 2% "
        f"budget ({notes_per_eval} notes x {per_note_s * 1e9:.0f} ns over "
        f"{eval_s:.3f} s)"
    )
