"""Fig. 7(b): the C18 bond-length-alternation double well.

Paper result: scanning the cyclo[18]carbon energy against the bond-length
alternation (cc-pVDZ, carbon 1s frozen), the alternated (polyynic) geometry
is lower than the cumulenic one, in agreement with experiment, at both the
DMET-VQE and CCSD levels.

Offline substitution (DESIGN.md #3): the PPP/SSH pi-system model of C18
with a sigma-bond elastic term, solved with CCSD and with DMET-VQE through
the identical pipeline.  The reproduced shape is the double well: E(BLA)
decreasing away from BLA=0, a minimum at finite BLA, rising beyond.
"""

import numpy as np
import pytest

from repro.chem.ccsd import CCSDSolver
from repro.chem.lattice import ppp_carbon_ring
from repro.chem.mo import MOIntegrals
from repro.dmet.solvers import orthonormal_rhf_density
from repro.q2chem import Q2Chemistry

from conftest import print_table

BLAS = [0.0, 0.08, 0.15, 0.22]


def _canonical_mo(lat) -> MOIntegrals:
    _, c = orthonormal_rhf_density(lat.h1, lat.h2, lat.n_electrons)
    h1 = c.T @ lat.h1 @ c
    g = np.einsum("pqrs,pi,qj,rk,sl->ijkl", lat.h2, c, c, c, c,
                  optimize=True)
    return MOIntegrals(h1=h1, h2=g, constant=lat.constant,
                       n_electrons=lat.n_electrons)


def test_fig07b_ccsd_double_well(benchmark):
    energies = []
    for bla in BLAS:
        lat = ppp_carbon_ring(18, bla=bla)
        energies.append(CCSDSolver(_canonical_mo(lat),
                                   max_iterations=200).run().energy)

    benchmark.pedantic(
        lambda: CCSDSolver(_canonical_mo(ppp_carbon_ring(18, bla=0.15)),
                           max_iterations=200).run(),
        rounds=1, iterations=1)

    rows = [[b, e, (e - energies[0]) * 27.2114]
            for b, e in zip(BLAS, energies)]
    print_table(
        "Fig 7b: C18 BLA scan at the CCSD level (PPP/SSH substitution)",
        ["BLA (A)", "E (Ha)", "dE vs BLA=0 (eV)"],
        rows,
        "paper: the bond-length-alternated structure is lower (cc-pVDZ "
        "CCSD and DMET-VQE); experiment confirms the polyynic geometry",
    )
    kmin = int(np.argmin(energies))
    assert BLAS[kmin] > 0.0          # alternated minimum
    assert energies[-1] > energies[kmin]  # double well turns back up


def test_fig07b_dmet_vqe_agrees(benchmark):
    """DMET-VQE on the same model prefers the alternated structure too."""
    def dmet_energy(bla):
        lat = ppp_carbon_ring(18, bla=bla)
        job = Q2Chemistry.from_lattice(lat)
        frags = [[i, i + 1] for i in range(0, 18, 2)]
        res = job.dmet_energy(fragments=frags, solver="vqe-fast",
                              all_fragments_equivalent=True,
                              vqe_tolerance=1e-7, mu_tolerance=5e-3)
        return res.energy

    e0 = dmet_energy(0.0)
    e_alt = dmet_energy(0.15)
    benchmark.pedantic(lambda: dmet_energy(0.15), rounds=1, iterations=1)

    print_table(
        "Fig 7b: DMET-VQE on C18 (2-site fragments)",
        ["BLA (A)", "E (Ha)"],
        [[0.0, e0], [0.15, e_alt]],
        "the alternated structure must come out lower, matching CCSD",
    )
    assert e_alt < e0
