"""Fig. 2(c): SV vs DM vs MPS runtime scaling with qubit count.

The paper's workload: a circuit that entangles every 4 consecutive qubits,
preparing a state of MPS bond dimension 8.  SV costs ~2^n, DM ~4^n, MPS ~n -
the crossovers and the MPS flatness are the reproduced shape.
"""

import numpy as np
import pytest

from repro.backends import resolve_backend
from repro.common.timing import timed
from repro.circuits.hea import brick_ansatz
from repro.simulators.mps_circuit import MPSSimulator

from conftest import print_table

# registry names of the three compared engines (short tags for the table)
_BACKENDS = {"sv": "statevector", "dm": "density_matrix", "mps": "mps"}


def _bound_brick(n_qubits: int):
    circ = brick_ansatz(n_qubits, window=4)
    rng = np.random.default_rng(42)
    return circ.bind(rng.standard_normal(circ.n_parameters))


def _time_simulator(kind: str, n_qubits: int) -> float:
    circ = _bound_brick(n_qubits)

    def run():
        return resolve_backend(_BACKENDS[kind], n_qubits,
                               max_bond_dimension=8).run(circ)

    secs, _ = timed(run, repeat=2)
    return secs


def test_fig02c_scaling_with_qubits(benchmark):
    sv_sizes = [4, 8, 12, 14, 16]
    dm_sizes = [4, 6, 8, 10]
    mps_sizes = [4, 8, 16, 24, 32, 48]

    times = {"sv": {}, "dm": {}, "mps": {}}
    for n in sv_sizes:
        times["sv"][n] = _time_simulator("sv", n)
    for n in dm_sizes:
        times["dm"][n] = _time_simulator("dm", n)
    for n in mps_sizes:
        times["mps"][n] = _time_simulator("mps", n)

    benchmark(lambda: MPSSimulator(16, max_bond_dimension=8).run(
        _bound_brick(16)))

    rows = []
    all_sizes = sorted(set(sv_sizes) | set(dm_sizes) | set(mps_sizes))
    for n in all_sizes:
        rows.append([
            n,
            times["sv"].get(n, float("nan")),
            times["dm"].get(n, float("nan")),
            times["mps"].get(n, float("nan")),
        ])
    print_table(
        "Fig 2c: simulator runtime (s) vs qubits (brick circuit, D=8)",
        ["qubits", "statevector", "density-matrix", "MPS"],
        rows,
        "SV/DM runtimes explode exponentially while MPS stays ~linear; "
        "DM hits its wall first.",
    )

    # shape assertions
    # 1) DM grows faster than SV (4^n vs 2^n): compare growth 4 -> 10 vs 4 -> 16
    sv_growth = times["sv"][16] / times["sv"][8]
    dm_growth = times["dm"][10] / times["dm"][8]
    mps_growth = times["mps"][32] / times["mps"][16]
    # MPS growth over doubling qubits is ~2x (linear), far below SV's
    assert mps_growth < sv_growth
    assert mps_growth < 8.0  # roughly linear, allow overheads
    # 2) at 16 qubits MPS beats SV decisively
    assert times["mps"][16] < times["sv"][16]
    # 3) at 10 qubits DM is the slowest of the three
    assert times["dm"][10] > times["sv"].get(10, times["sv"][8])
    assert times["dm"][10] > times["mps"].get(10, times["mps"][8])


def test_fig02c_memory_scaling(benchmark):
    """Memory footprints: 16B * 2^n (SV), 16B * 4^n (DM), ~linear (MPS)."""
    rows = []
    for n in (8, 16, 24, 48):
        sv_bytes = 16 * 2 ** n
        dm_bytes = 16 * 4 ** n
        mps = MPSSimulator(n, max_bond_dimension=8).run(_bound_brick(n))
        rows.append([n, sv_bytes, dm_bytes, mps.memory_bytes()])
    benchmark(lambda: MPSSimulator(24, max_bond_dimension=8).run(
        _bound_brick(24)).memory_bytes())
    print_table(
        "Fig 2c (memory): bytes to represent the state",
        ["qubits", "SV bytes", "DM bytes", "MPS bytes"],
        rows,
        "the SV exponential wall (~45 qubits on a full supercomputer) is "
        "why the MPS simulator exists",
    )
    # MPS memory at 48 qubits is under a megabyte; SV would need petabytes
    assert rows[-1][3] < 2 ** 20
    assert rows[-1][1] > 2 ** 50
