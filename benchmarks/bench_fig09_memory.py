"""Fig. 9: the memory-efficient circuit-storage scheme (Sec. III-D).

Paper setup: (H2)3, LiH and H2O have 919, 630 and 1085 Hadamard-test
circuits; with 18/19/17 circuits per process, keeping ONE ansatz replica
plus on-the-fly measurement parts gives ~15x speedup and ~20x memory
reduction over storing full circuits.

We build the same per-process batches and measure both stores through one
full energy-evaluation step on the MPS simulator:

* replicated - rebind every full circuit, simulate each from scratch;
* shared     - bind the single ansatz replica, run it once, then apply only
               the cached measurement parts to copies of the state.
"""

import numpy as np
import pytest

from repro.common.timing import timed
from repro.chem import geometry
from repro.chem.scf import RHF
from repro.chem import mo as momod
from repro.circuits.uccsd import UCCSDAnsatz
from repro.operators.molecular import molecular_qubit_hamiltonian
from repro.operators.pauli import pauli_string
from repro.simulators.mps_circuit import MPSSimulator
from repro.vqe.circuit_store import (
    ReplicatedCircuitStore,
    SharedAnsatzCircuitStore,
)

from conftest import print_table


def _setup(molecule, circuits_per_process: int):
    rhf = RHF(molecule, "sto-3g")
    res = rhf.run()
    momod.attach_eri(res, rhf.engine.eri())
    mo = momod.from_scf(res)
    ham = molecular_qubit_hamiltonian(mo)
    terms = [t for t, _ in ham if not t.is_identity()]
    ansatz = UCCSDAnsatz(mo.n_orbitals, mo.n_electrons)
    width = ansatz.n_qubits + 1  # ancilla row
    circuit = ansatz.circuit(n_qubits=width)
    batch = terms[:circuits_per_process]
    return circuit, terms, batch, width, ansatz.n_parameters


# The store comparison is simulator-agnostic (both stores feed the same
# simulator); the dense statevector backend is the fastest exact engine at
# these 13-15 qubit sizes, keeping the benchmark wall time reasonable.
from repro.simulators.statevector import StatevectorSimulator


def _evaluate_replicated(store, theta, width):
    anc_z = pauli_string([(width - 1, "Z")])
    total = 0.0
    for circ in store.bind(theta):
        sim = StatevectorSimulator(width).run(circ)
        total += sim.expectation_pauli(anc_z)
    return total


def _evaluate_shared(store, theta, width):
    anc_z = pauli_string([(width - 1, "Z")])
    base = StatevectorSimulator(width).run(store.bind(theta))
    psi = base.statevector()
    total = 0.0
    for term in store.terms:
        sim = StatevectorSimulator(width)
        sim.set_state(psi)
        sim.run(store.measurement_circuit(term))
        total += sim.expectation_pauli(anc_z)
    return total


@pytest.mark.parametrize("name,molecule,per_process,total_paper", [
    ("(H2)3", geometry.h2_trimer(), 18, 919),
    ("LiH", geometry.lih(), 19, 630),
    ("H2O", geometry.water(), 17, 1085),
])
def test_fig09_memory_scheme(benchmark, name, molecule, per_process,
                             total_paper):
    circuit, terms, batch, width, n_params = _setup(molecule, per_process)
    rng = np.random.default_rng(3)
    theta = 0.02 * rng.standard_normal(n_params)

    replicated = ReplicatedCircuitStore(circuit, batch)
    shared = SharedAnsatzCircuitStore(circuit, batch)
    shared.materialize_all()

    t_rep, e_rep = timed(
        lambda: _evaluate_replicated(replicated, theta, width), repeat=1)
    t_shr, e_shr = timed(
        lambda: _evaluate_shared(shared, theta, width), repeat=1)
    assert e_rep == pytest.approx(e_shr, abs=1e-8)  # identical physics

    speedup = t_rep / t_shr
    mem_ratio = replicated.memory_bytes() / shared.memory_bytes()

    benchmark.pedantic(lambda: _evaluate_shared(shared, theta, width),
                       rounds=1, iterations=1)

    print_table(
        f"Fig 9 [{name}]: memory-efficient circuit store",
        ["total circuits", "per process", "speedup", "memory ratio"],
        [[len(terms), per_process, speedup, mem_ratio]],
        f"paper: {total_paper} circuits, ~15x speedup, ~20x memory "
        "reduction at 17-19 circuits/process",
    )
    # shape: an O(circuits-per-process) speedup and memory win
    assert speedup > 0.4 * per_process
    assert mem_ratio > 0.4 * per_process
