"""Fig. 8: single-circuit simulation time across simulator implementations.

Paper setup: one UCCSD circuit for H2, LiH and H2O on one process, compared
across qiskit (state vector), qiskit (MPS), quimb (MPS) and Q2Chemistry.
Offline substitution (DESIGN.md #4): the external packages are replaced by
faithful re-implementations of their algorithmic choices -

* "SV"        - dense gate-by-gate statevector (qiskit-SV stand-in);
* "MPS naive" - MPS without gate fusion, one SVD per gate, every
                single-qubit rotation applied individually (quimb stand-in);
* "MPS opt"   - the paper's pipeline: fusion + Hastings update + fused
                permute/GEMM kernels (the current work).

Reproduced shape: the optimized MPS clearly beats the naive MPS (paper: ~7x
vs quimb, ~2x vs qiskit-MPS).
"""

import numpy as np
import pytest

from repro.common.timing import timed
from repro.circuits.uccsd import UCCSDAnsatz
from repro.simulators.mps_circuit import MPSSimulator
from repro.simulators.statevector import StatevectorSimulator

from conftest import print_table


def _bound_uccsd(mo):
    ansatz = UCCSDAnsatz(mo.n_orbitals, mo.n_electrons)
    rng = np.random.default_rng(7)
    theta = 0.05 * rng.standard_normal(ansatz.n_parameters)
    return ansatz.circuit().bind(theta)


def test_fig08_software_comparison(benchmark, h2_mo, lih_mo, water_mo):
    systems = [("H2", h2_mo[0]), ("LiH", lih_mo[0]), ("H2O", water_mo[0])]
    rows = []
    ratios = []
    for name, mo in systems:
        circ = _bound_uccsd(mo)
        n = circ.n_qubits
        t_sv, _ = timed(lambda: StatevectorSimulator(n).run(circ), repeat=1)
        t_naive, _ = timed(
            lambda: MPSSimulator(n, mode="naive").run(circ), repeat=1)
        t_opt, _ = timed(
            lambda: MPSSimulator(n, mode="optimized").run(circ), repeat=1)
        rows.append([name, n, len(circ), t_sv, t_naive, t_opt,
                     t_naive / t_opt])
        ratios.append(t_naive / t_opt)

    benchmark(lambda: MPSSimulator(h2_mo[0].n_qubits).run(
        _bound_uccsd(h2_mo[0])))

    print_table(
        "Fig 8: one UCCSD circuit, one process - seconds per simulator",
        ["system", "qubits", "gates", "SV", "MPS naive", "MPS opt",
         "naive/opt"],
        rows,
        "Q2Chemistry ~7x faster than quimb(MPS), ~2x faster than "
        "qiskit (SV and MPS)",
    )
    # the optimized pipeline must beat the naive MPS on every system,
    # and by a growing margin on the larger ones (paper: ~2x vs qiskit-MPS,
    # ~7x vs quimb)
    assert all(r > 1.2 for r in ratios)
    assert ratios[-1] > 2.0
