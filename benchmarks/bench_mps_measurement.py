"""MPS measurement paths: per-term vs shared-environment sweep vs MPO.

The batched measurement engine (:mod:`repro.simulators.mps_measure`) turns
the per-term transfer-matrix walk over a JW molecular Hamiltonian into one
two-sided environment sweep (plus an O(D^2) combine per term), with a
compressed-MPO contraction as the alternative batched path.  This benchmark
times all three paths on the 12-qubit LiH/STO-3G Hamiltonian (631 Pauli
strings) against random canonical states at several bond dimensions,
asserts that every path agrees with the per-term oracle to 1e-10, asserts
the sweep's >=5x speedup at D >= 32 (the acceptance criterion), and dumps
the timing table to JSON.

Set ``REPRO_MPS_BENCH_DIMS`` (comma-separated bond dimensions, e.g.
``"16,32"``) for a reduced CI configuration; the speedup assertion applies
whenever a D >= 32 point is present.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.common.timing import timed
from repro.operators.molecular import molecular_qubit_hamiltonian
from repro.simulators.mps import MPS
from repro.simulators.mps_measure import (
    MPSMeasurementEngine,
    compiled_mpo,
    sweep_plan,
)

from conftest import print_table

RESULTS_PATH = Path(__file__).resolve().parent / "results" / \
    "mps_measurement.json"

#: the acceptance criterion: sweep >= 5x over per-term at D >= 32
MIN_SWEEP_SPEEDUP = 5.0
SPEEDUP_MIN_D = 32

AGREEMENT_ATOL = 1e-10


def _bond_dimensions() -> list[int]:
    """Bond dimensions to measure (env-var reducible for CI)."""
    raw = os.environ.get("REPRO_MPS_BENCH_DIMS", "16,32,64")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _measure_case(ham, n_qubits: int, d: int, repeat: int) -> dict:
    """Time the three measurement paths on one random canonical state."""
    mps = MPS.random_state(n_qubits, bond_dimension=d, seed=97 + d)

    # a fresh engine per call: steady-state VQE builds a new simulator per
    # energy evaluation, so per-state caches must be rebuilt every time
    # (the state-independent sweep plan / MPO stay module-cached, exactly
    # as they do across optimizer iterations)
    per_term_s, e_per_term = timed(
        lambda: MPSMeasurementEngine().expectation_per_term(mps, ham),
        repeat=repeat)
    sweep_s, e_sweep = timed(
        lambda: MPSMeasurementEngine().expectation_sweep(mps, ham),
        repeat=repeat)
    compiled_mpo(ham, n_qubits)  # compile outside the timed region
    mpo_s, e_mpo = timed(
        lambda: MPSMeasurementEngine().expectation_mpo(mps, ham),
        repeat=repeat)

    assert abs(e_sweep - e_per_term) < AGREEMENT_ATOL, (
        f"D={d}: sweep {e_sweep!r} != per-term {e_per_term!r}"
    )
    assert abs(e_mpo - e_per_term) < AGREEMENT_ATOL, (
        f"D={d}: MPO {e_mpo!r} != per-term {e_per_term!r}"
    )
    return {
        "bond_dimension": d,
        "energy": e_per_term,
        "per_term_seconds": per_term_s,
        "sweep_seconds": sweep_s,
        "mpo_seconds": mpo_s,
        "sweep_speedup": per_term_s / sweep_s,
        "mpo_speedup": per_term_s / mpo_s,
    }


def test_mps_measurement_paths(lih_mo, benchmark):
    """Sweep/MPO vs per-term on LiH-12q: agree to 1e-10, sweep >=5x."""
    lih, _scf = lih_mo
    ham = molecular_qubit_hamiltonian(lih)
    n_qubits = 12
    plan = sweep_plan(ham, n_qubits)
    mpo = compiled_mpo(ham, n_qubits)
    repeat = 3

    results = [_measure_case(ham, n_qubits, d, repeat)
               for d in _bond_dimensions()]

    state32 = MPS.random_state(n_qubits, bond_dimension=32, seed=5)
    benchmark(
        lambda: MPSMeasurementEngine().expectation_sweep(state32, ham))

    rows = [[r["bond_dimension"], r["per_term_seconds"], r["sweep_seconds"],
             r["mpo_seconds"], r["sweep_speedup"], r["mpo_speedup"]]
            for r in results]
    print_table(
        "MPS measurement paths on LiH/STO-3G (12 qubits, "
        f"{plan.n_terms} non-identity terms)",
        ["D", "per-term s", "sweep s", "mpo s", "sweep x", "mpo x"],
        rows,
        paper_note="environment reuse collapses "
                   f"{plan.n_terms} independent contractions into "
                   f"{plan.n_env_steps} shared transfer steps; compressed "
                   f"MPO bonds {mpo.bond_dimensions()}",
    )

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps({
        "hamiltonian": "lih_sto3g_12q",
        "n_terms": plan.n_terms,
        "n_env_steps": plan.n_env_steps,
        "mpo_bond_dimensions": mpo.bond_dimensions(),
        "results": results,
    }, indent=2))

    eligible = [r for r in results if r["bond_dimension"] >= SPEEDUP_MIN_D]
    assert eligible, (
        f"no bond dimension >= {SPEEDUP_MIN_D} measured; the acceptance "
        f"assertion needs at least one (REPRO_MPS_BENCH_DIMS too narrow)"
    )
    for r in eligible:
        assert r["sweep_speedup"] >= MIN_SWEEP_SPEEDUP, (
            f"sweep only {r['sweep_speedup']:.2f}x over per-term at "
            f"D={r['bond_dimension']} (need >= {MIN_SWEEP_SPEEDUP}x)"
        )
