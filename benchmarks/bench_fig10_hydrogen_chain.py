"""Fig. 10: one-VQE-circuit MPS simulation time vs hydrogen-chain length.

The paper simulates one VQE circuit for H_n chains with n = 6..100 atoms
(12..200 qubits) and finds the time "scales linearly with the number of
qubits".  At a fixed bond dimension the cost per two-qubit gate is constant,
so linearity holds for circuits whose gate count grows linearly - which is
the case for the spatially local UCCSD excitations that dominate a chain's
correlation.  We build exactly such circuits (nearest-neighbour pair
excitations, one Trotter step) and fit the measured times.
"""

import numpy as np
import pytest

from repro.common.timing import timed
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.circuits.trotter import pauli_rotation_circuit
from repro.operators.fermion import FermionOperator
from repro.operators.jordan_wigner import jordan_wigner
from repro.simulators.mps_circuit import MPSSimulator

from conftest import print_table


def local_uccsd_chain_circuit(n_atoms: int, theta: float = 0.05) -> Circuit:
    """One Trotter step of nearest-neighbour UCCSD on an H chain.

    Per neighbouring atom pair (i, i+1): the paired double excitation
    (both electrons of bond i hop to bond i+1) and the two spin singles.
    Gate count grows linearly with the chain length.
    """
    n_qubits = 2 * n_atoms
    circ = Circuit(n_qubits, name=f"local_uccsd_H{n_atoms}")
    # half-filled reference with every other site doubly occupied, so the
    # neighbouring-pair excitations all act nontrivially and the evolution
    # genuinely entangles the chain
    for i in range(0, n_atoms, 2):
        circ.append(Gate("X", (2 * i,)))
        circ.append(Gate("X", (2 * i + 1,)))
    for i in range(n_atoms - 1):
        base = 2 * i
        # singles (alpha/beta) i -> i+1 and the paired double
        taus = [
            FermionOperator.from_term([(base + 2, 1), (base, 0)]),
            FermionOperator.from_term([(base + 3, 1), (base + 1, 0)]),
            FermionOperator.from_term([(base + 2, 1), (base + 3, 1),
                                       (base + 1, 0), (base, 0)]),
        ]
        for tau in taus:
            gen = (tau - tau.dagger()).normal_ordered()
            for pt, coeff in jordan_wigner(gen):
                circ.extend(pauli_rotation_circuit(
                    pt, n_qubits, angle=float(coeff.imag) * theta))
    return circ


def test_fig10_linear_scaling(benchmark):
    atom_counts = [6, 12, 20, 32, 48]
    bond_dim = 16
    rows = []
    sizes, times = [], []
    for n in atom_counts:
        circ = local_uccsd_chain_circuit(n)
        nq = circ.n_qubits
        t, sim = timed(lambda: MPSSimulator(
            nq, max_bond_dimension=bond_dim).run(circ), repeat=2)
        rows.append([n, nq, len(circ), t, sim.max_bond()])
        sizes.append(nq)
        times.append(t)

    benchmark(lambda: MPSSimulator(24, max_bond_dimension=bond_dim).run(
        local_uccsd_chain_circuit(12)))

    print_table(
        "Fig 10: one VQE circuit on the MPS simulator, hydrogen chains",
        ["atoms", "qubits", "gates", "seconds", "max D"],
        rows,
        "paper: 6..100 atoms (12..200 qubits), time scales linearly with "
        "the number of qubits",
    )

    # linearity: R^2 of a linear fit in qubit count
    a = np.vstack([sizes, np.ones(len(sizes))]).T
    coef, res, *_ = np.linalg.lstsq(a, np.asarray(times), rcond=None)
    fitted = a @ coef
    ss_tot = np.sum((times - np.mean(times)) ** 2)
    ss_res = np.sum((np.asarray(times) - fitted) ** 2)
    r2 = 1.0 - ss_res / ss_tot
    print(f"linear fit: t = {coef[0]*1e3:.3f} ms/qubit + {coef[1]*1e3:.2f} "
          f"ms, R^2 = {r2:.4f}")
    assert r2 > 0.97  # the paper's linear-scaling claim
    assert coef[0] > 0
    # the circuits must actually entangle the chain (guards the workload)
    assert rows[-1][4] > 1


@pytest.mark.parametrize("n_atoms", [100])
def test_fig10_large_chain_200_qubits(benchmark, n_atoms):
    """The paper's largest MPS-VQE circuit: 100 atoms = 200 qubits."""
    circ = local_uccsd_chain_circuit(n_atoms)
    nq = circ.n_qubits
    assert nq == 200

    def run():
        return MPSSimulator(nq, max_bond_dimension=16).run(circ)

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n200-qubit circuit: {len(circ)} gates, "
          f"max bond reached {sim.max_bond()}, "
          f"memory {sim.memory_bytes() / 1e6:.2f} MB")
    assert sim.max_bond() <= 16
