"""Figs. 12-13: strong and weak scaling to 21,299,200 cores.

The decomposition, LPT scheduling and communicator traffic execute for real;
time comes from the SW26010Pro machine model with kernel costs calibrated
against this machine's measured MPS timings (DESIGN.md substitution #1).

Paper targets: strong scaling of the H1280 chain from 10,240 to 327,680
processes with >=92% efficiency and 30x speedup; weak scaling (40..1280
atoms) at ~92% efficiency.
"""

import pytest

from repro.parallel.perfmodel import CircuitCostModel, ScalingExperiment
from repro.parallel.threelevel import ThreeLevelDriver

from conftest import print_table


@pytest.fixture(scope="module")
def experiment():
    cost = CircuitCostModel.calibrate(bond_dimension=16,
                                      qubit_sizes=(8, 12, 16), n_layers=1)
    return ScalingExperiment(cost_model=cost)


def test_fig12_strong_scaling(benchmark, experiment):
    points = benchmark.pedantic(experiment.strong_scaling, rounds=1,
                                iterations=1)
    rows = [[p.n_processes, p.n_cores, p.n_waves, p.time_s, p.speedup,
             p.efficiency * 100] for p in points]
    print_table(
        "Fig 12: strong scaling, H1280 chain (640 fragments, 2048 "
        "procs/group)",
        ["processes", "cores", "waves", "time (s)", "speedup", "eff %"],
        rows,
        "paper: 30x speedup and >=92% parallel efficiency from 10,240 to "
        "327,680 processes (665,600 to 21,299,200 cores)",
    )
    last = points[-1]
    assert last.n_cores == 21_299_200
    assert 28.0 <= last.speedup <= 32.0
    assert last.efficiency >= 0.92
    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)


def test_fig13_weak_scaling(benchmark, experiment):
    points = benchmark.pedantic(experiment.weak_scaling, rounds=1,
                                iterations=1)
    rows = [[p.n_processes, p.n_cores, p.n_fragments * 2, p.time_s,
             p.efficiency * 100] for p in points]
    print_table(
        "Fig 13: weak scaling, hydrogen chains growing with the machine",
        ["processes", "cores", "atoms", "time (s)", "eff %"],
        rows,
        "paper: ~92% weak-scaling efficiency at 327,680 processes "
        "(21,299,200 cores) relative to 10,240 processes",
    )
    assert points[-1].efficiency >= 0.92
    # weak scaling: time grows only mildly while the problem grows 32x
    assert points[-1].time_s < 1.15 * points[0].time_s


def test_fig4_communication_profile(benchmark):
    """The Fig. 4 communication pattern: tiny bcast+reduce per iteration.

    Paper measurement: ~15.6 KB per process and <0.001 s of communication
    per VQE iteration.
    """
    drv = ThreeLevelDriver(processes_per_group=2048)
    rep = benchmark.pedantic(
        lambda: drv.simulate(n_fragments=5, n_processes=10_240,
                             n_iterations=1),
        rounds=1, iterations=1)
    comm_per_iter = rep.comm_seconds / max(1, rep.n_fragments)
    print_table(
        "Fig 4 profile: per-iteration communication",
        ["bytes/proc/iter", "comm s/iter", "comm share %",
         "idle fraction %"],
        [[rep.bytes_per_process_per_iteration, comm_per_iter,
          (rep.breakdown["bcast_s"] + rep.breakdown["reduce_s"])
          / rep.makespan_s * 100,
          rep.idle_fraction * 100]],
        "paper: 15.6 KB/process, <0.001 s communication per VQE iteration",
    )
    assert rep.bytes_per_process_per_iteration < 15_600
    assert comm_per_iter < 1e-3
