"""Fig. 7(a): DMET-MPS-VQE accuracy against FCI.

Paper setup: (i) the potential curve of the 10-atom hydrogen ring with
two-atom DMET fragments stays within 0.5% relative error of FCI; (ii) full
MPS-VQE on H2, LiH and H2O reproduces FCI to ~0.01% relative error.

Energies are simulator-independent: the VQE runs use the fast UCC evaluator,
which the test-suite proves numerically identical to the MPS pipeline.
"""

import numpy as np
import pytest

from repro.chem import geometry
from repro.q2chem import Q2Chemistry

from conftest import print_table


def test_fig07a_h10_ring_curve(benchmark):
    """H10 ring potential curve: DMET(2-atom fragments) vs FCI."""
    bond_lengths = [0.8, 1.0, 1.2]
    rows = []
    rels = []

    def point(r):
        job = Q2Chemistry.from_molecule(geometry.hydrogen_ring(10, r))
        e_fci = job.fci_energy()
        res = job.dmet_energy(atoms_per_group=2, solver="vqe-fast",
                              all_fragments_equivalent=True,
                              vqe_tolerance=1e-8, mu_tolerance=1e-4)
        return e_fci, res.energy

    for r in bond_lengths:
        e_fci, e_dmet = point(r)
        rel = abs((e_dmet - e_fci) / e_fci) * 100
        rows.append([r, e_fci, e_dmet, rel])
        rels.append(rel)

    benchmark.pedantic(lambda: point(1.0), rounds=1, iterations=1)

    print_table(
        "Fig 7a: H10 ring, DMET-VQE (2-atom fragments) vs FCI",
        ["r (A)", "FCI (Ha)", "DMET-VQE (Ha)", "rel err %"],
        rows,
        "paper: relative errors within 0.5% along the curve",
    )
    assert max(rels) < 0.5
    # curve shape: a minimum exists inside the scanned window
    energies = [row[2] for row in rows]
    assert energies[1] < energies[0] and energies[1] < energies[2]


def test_fig07a_mps_vqe_small_molecules(benchmark):
    """MPS-VQE vs FCI for H2 / LiH / H2O: ~0.01% relative error."""
    systems = [
        ("H2", geometry.h2(0.7414), 4),
        ("LiH", geometry.lih(), 12),
        ("H2O", geometry.water(), 14),
    ]
    rows = []
    rels = []

    def solve(molecule):
        job = Q2Chemistry.from_molecule(molecule)
        e_fci = job.fci_energy()
        # the target is the paper's ~0.01% relative error (7.5 mHa for
        # H2O); COBYLA crosses that within ~1000 evaluations, so the
        # budget below bounds wall time without endangering the claim
        res = job.vqe_energy(simulator="fast", tolerance=1e-6,
                             max_iterations=2500)
        return e_fci, res.energy, res.n_evaluations

    for name, mol, nq in systems:
        e_fci, e_vqe, evals = solve(mol)
        rel = abs((e_vqe - e_fci) / e_fci) * 100
        rows.append([name, nq, e_fci, e_vqe, rel, evals])
        rels.append(rel)

    benchmark.pedantic(lambda: solve(geometry.h2(0.7414)), rounds=1,
                       iterations=1)

    print_table(
        "Fig 7a (inset): full VQE vs FCI",
        ["system", "qubits", "FCI (Ha)", "VQE (Ha)", "rel err %",
         "evaluations"],
        rows,
        "paper: H2/LiH/H2O relative errors at the 0.01% level",
    )
    assert all(r < 0.01 for r in rels)
