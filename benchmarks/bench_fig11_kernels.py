"""Fig. 11 + Sec. IV-B text: tensor-kernel speedups vs bond dimension.

Paper setup: the MPE-only baseline vs the MPE+64-CPE optimized kernels, for
tensor contraction (2.3x - 46.5x) and SVD (1.04x - 15.5x), with the speedup
growing as the bond dimension rises from 256 to 1024.

Offline substitution (DESIGN.md #2): the CPE offload is represented by the
gap between deliberately naive reference kernels (pure-loop contraction,
unblocked Jacobi SVD) and the fused permute+GEMM / LAPACK gesdd kernels.
The reproduced shape - speedup grows with D because arithmetic intensity
grows - is checked at laptop-sized D.
"""

import numpy as np
import pytest

from repro.common.rng import default_rng
from repro.common.timing import timed
from repro.simulators.kernels import (
    KernelBackend,
    svd_truncated,
    tensordot_fused,
)

from conftest import print_table

BOND_DIMS = [8, 16, 32, 64]


def _gate_contraction_operands(d: int, seed: int = 0):
    """The Eq. 7 contraction: gate (2,2,2,2) x theta (D,2,2,D)."""
    rng = default_rng(seed)
    gate = (rng.standard_normal((2, 2, 2, 2))
            + 1j * rng.standard_normal((2, 2, 2, 2)))
    theta = (rng.standard_normal((d, 2, 2, d))
             + 1j * rng.standard_normal((d, 2, 2, d)))
    return gate, theta


def test_fig11_contraction_speedup(benchmark):
    blas = KernelBackend(name="blas")
    naive = KernelBackend(name="naive")
    rows = []
    speedups = []
    for d in BOND_DIMS:
        gate, theta = _gate_contraction_operands(d)
        axes = ((2, 3), (1, 2))
        t_blas, _ = timed(
            lambda: tensordot_fused(gate, theta, axes, backend=blas),
            repeat=3)
        t_naive, _ = timed(
            lambda: tensordot_fused(gate, theta, axes, backend=naive),
            repeat=1)
        rows.append([d, t_naive, t_blas, t_naive / t_blas])
        speedups.append(t_naive / t_blas)

    gate, theta = _gate_contraction_operands(64)
    benchmark(lambda: tensordot_fused(gate, theta, ((2, 3), (1, 2)),
                                      backend=blas))
    print_table(
        "Fig 11 (upper): tensor contraction - naive vs fused permute+GEMM",
        ["D", "naive (s)", "optimized (s)", "speedup"],
        rows,
        "paper: 2.3x at small D growing to 46.5x at D=1024 (MPE vs "
        "MPE+CPE)",
    )
    assert speedups[-1] > speedups[0]       # grows with D
    assert speedups[-1] > 10.0              # large at the top of our range


def test_fig11_svd_speedup(benchmark):
    blas = KernelBackend(name="blas")
    naive = KernelBackend(name="naive")
    rng = default_rng(1)
    rows = []
    speedups = []
    for d in BOND_DIMS:
        m = (rng.standard_normal((2 * d, 2 * d))
             + 1j * rng.standard_normal((2 * d, 2 * d)))
        t_blas, _ = timed(lambda: svd_truncated(m, backend=blas), repeat=5)
        t_naive, _ = timed(lambda: svd_truncated(m, backend=naive), repeat=2)
        rows.append([d, t_naive, t_blas, t_naive / t_blas])
        speedups.append(t_naive / t_blas)

    m64 = (rng.standard_normal((128, 128))
           + 1j * rng.standard_normal((128, 128)))
    benchmark(lambda: svd_truncated(m64, backend=blas))
    print_table(
        "Fig 11 (lower): SVD - reference Jacobi vs LAPACK gesdd",
        ["D", "naive (s)", "optimized (s)", "speedup"],
        rows,
        "paper: 1.04x at small D growing to 15.5x at D=1024",
    )
    # the paper's SVD band is 1.04x..15.5x; the reproduced speedups must
    # stay within (and not below) that band - SVD gains are much more
    # modest than contraction gains, which is itself part of the shape
    assert all(s > 1.0 for s in speedups)
    assert max(speedups) > 2.0
    assert max(speedups) < 60.0


def test_sec4b_backend_comparison(benchmark):
    """Sec. IV-B: the optimized stack vs generic-library builds.

    Paper measurement: the SW version runs 1.1x faster than an x86 build on
    OpenBLAS and 16.6x faster than one on reference LAPACK-3.2, for a
    random nearest-neighbour circuit on a random MPS (D-threshold state).
    Reproduced contrast: the fused-gesdd ("blas") backend vs the
    unfused-einsum/gesvd ("plain") backend on the same workload.
    """
    from repro.circuits.hea import random_brick_circuit
    from repro.simulators.kernels import KernelBackend
    from repro.simulators.mps import MPS

    n, d = 12, 32
    circ = random_brick_circuit(n, 2, seed=11)

    def evolve(backend_name):
        mps = MPS.random_state(n, bond_dimension=d, seed=5)
        mps.backend = KernelBackend(name=backend_name)
        mps.max_bond_dimension = d
        for g in circ.gates:
            mps.apply_two_qubit(g.matrix(), *g.qubits)
        return mps

    t_blas, _ = timed(lambda: evolve("blas"), repeat=2)
    t_plain, _ = timed(lambda: evolve("plain"), repeat=2)

    benchmark.pedantic(lambda: evolve("blas"), rounds=1, iterations=1)
    print_table(
        "Sec IV-B: random MPS evolution - optimized vs generic backends",
        ["backend", "seconds", "relative"],
        [["blas (fused+gesdd)", t_blas, 1.0],
         ["plain (einsum+gesvd)", t_plain, t_plain / t_blas]],
        "paper: SW 1.1x over x86/OpenBLAS, 16.6x over x86/LAPACK-3.2 at "
        "D=512",
    )
    assert t_blas < t_plain


def test_sec4b_specialization_cache(benchmark):
    """Sec. III-E: plan/specialization caching (the Julia-JIT analogue).

    Steady-state VQE iterations must hit the contraction-plan cache; the
    first circuit compiles the plans, later circuits reuse them.
    """
    from repro.circuits.hea import random_brick_circuit
    from repro.simulators.mps_circuit import MPSSimulator
    from repro.simulators.kernels import get_backend

    circ = random_brick_circuit(12, 3, seed=4)
    be = get_backend()
    be.plan_cache.clear()
    be.reset_stats()
    MPSSimulator(12, max_bond_dimension=16).run(circ)
    first = be.stats()
    be.reset_stats()
    MPSSimulator(12, max_bond_dimension=16).run(circ)
    second = be.stats()

    benchmark(lambda: MPSSimulator(12, max_bond_dimension=16).run(circ))

    print_table(
        "Sec III-E: kernel specialization cache across VQE iterations",
        ["run", "cache hits", "cache misses"],
        [["first", first["cache_hits"], first["cache_misses"]],
         ["second", second["cache_hits"], second["cache_misses"]]],
        "Julia JIT-compiles kernels once per shape signature and reuses "
        "them across the 20M-core run",
    )
    assert second["cache_misses"] == 0
    assert second["cache_hits"] > 0
