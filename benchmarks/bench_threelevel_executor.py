"""Real multiprocess speedup of the level-2 Pauli-group engine.

The three-level engine partitions a Hamiltonian into fixed Pauli-group
batches and fans them out to worker processes that attach the statevector
through shared memory (paper Sec. III-C, executed for real instead of on
simulated clocks).  This benchmark measures the wall-clock of one full
expectation at 1/2/4 workers against the in-line serial baseline on
>=12-qubit Hamiltonians, asserts the energies are *bitwise identical*
across every configuration (the engine's reproducibility contract), and
dumps the timing table plus the engine's per-level counters to JSON.

The >=2x speedup assertion is gated on the machine actually having >= 4
CPUs: on fewer cores a process pool cannot beat the serial path for
CPU-bound work, and pretending otherwise would just encode noise.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.chem.lattice import hubbard_ring
from repro.common.rng import default_rng
from repro.common.timing import timed
from repro.operators.molecular import molecular_qubit_hamiltonian
from repro.parallel.executor import (
    ExecutorCounters,
    GroupedObservable,
    ProcessExecutor,
    default_worker_count,
)

from conftest import print_table

RESULTS_PATH = Path(__file__).resolve().parent / "results" / \
    "threelevel_executor.json"

#: speedup acceptance only applies where the hardware can deliver it
MIN_CPUS_FOR_SPEEDUP = 4


def _random_state(n_qubits: int, seed: int = 11) -> np.ndarray:
    rng = default_rng(seed)
    psi = rng.standard_normal(1 << n_qubits) \
        + 1j * rng.standard_normal(1 << n_qubits)
    return psi / np.linalg.norm(psi)


def _measure_case(tag: str, hamiltonian, n_qubits: int) -> dict:
    """Serial vs process-pool expectation timings for one Hamiltonian."""
    grouped = GroupedObservable(hamiltonian, n_qubits)
    psi = _random_state(n_qubits)
    counters = ExecutorCounters()

    serial_s, e_serial = timed(
        lambda: grouped.expectation(psi, counters=counters), repeat=3)

    runs = {}
    energies = {"serial": e_serial}
    for workers in (1, 2, 4):
        with ProcessExecutor(max_workers=workers) as ex:
            # warm the pool + worker-side compiled caches before timing
            grouped.expectation(psi, ex)
            secs, e = timed(
                lambda: grouped.expectation(psi, ex, counters=counters),
                repeat=3)
        runs[workers] = secs
        energies[f"process_{workers}"] = e

    assert len({repr(e) for e in energies.values()}) == 1, (
        f"{tag}: energies differ across executors: {energies}"
    )
    return {
        "case": tag,
        "n_qubits": n_qubits,
        "n_terms": grouped.n_terms,
        "n_groups": grouped.n_groups,
        "energy": e_serial,
        "serial_seconds": serial_s,
        "process_seconds": {str(w): s for w, s in runs.items()},
        "speedup_at_4": serial_s / runs[4],
        "counters": counters.to_dict(),
    }


def test_threelevel_executor_speedup(lih_mo, benchmark):
    """Process-pool level-2 engine: bitwise-stable, >=2x at 4 workers."""
    lih, _scf = lih_mo
    cases = [
        # molecular 12-qubit workload (the paper's LiH column)
        ("lih_sto3g_12q", molecular_qubit_hamiltonian(lih), 12),
        # 9-site Hubbard ring: 18 qubits, large statevector per gather -
        # the regime where fan-out beats dispatch overhead
        ("hubbard_ring9_18q",
         molecular_qubit_hamiltonian(hubbard_ring(9).to_mo_integrals()), 18),
    ]
    results = [_measure_case(tag, ham, n) for tag, ham, n in cases]

    grouped = GroupedObservable(cases[0][1], 12)
    psi = _random_state(12)
    benchmark(lambda: grouped.expectation(psi))

    n_cpus = default_worker_count()
    rows = [[r["case"], r["n_qubits"], r["n_terms"],
             r["serial_seconds"], r["process_seconds"]["4"],
             r["speedup_at_4"]] for r in results]
    print_table(
        "Three-level executor: serial vs process pool (4 workers)",
        ["case", "qubits", "terms", "serial s", "process4 s", "speedup"],
        rows,
        paper_note=f"machine has {n_cpus} usable CPUs; energies bitwise "
                   f"identical across all executor configurations",
    )

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(
        {"n_cpus": n_cpus, "results": results}, indent=2))

    if n_cpus >= MIN_CPUS_FOR_SPEEDUP:
        best = max(r["speedup_at_4"] for r in results)
        assert best >= 2.0, (
            f"4-worker process pool only {best:.2f}x over serial on "
            f"{n_cpus} CPUs"
        )
    else:
        print(f"[gated] speedup assertion skipped: {n_cpus} CPU(s) < "
              f"{MIN_CPUS_FOR_SPEEDUP}")
